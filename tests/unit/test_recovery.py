"""Self-healing sharded simulation: crash injection and recovery.

Covers the supervision layer of :mod:`repro.serving.shard`:
:class:`CrashSchedule` validation and seeded generation, the
checkpoint/restore round-trip of a :class:`ShardSlice`, and the
recovery determinism contract — the crash matrix {crash epoch x
worker count x {plain, faults, elastic}} asserting that every
recovered summary byte-equals the crash-free ``workers=1`` oracle
(modulo the ``recovery`` block, which only crashed runs grow), plus
the hang/watchdog, budget-exhaustion/degradation, collect-crash and
checkpoint-disabled variants of the same invariant.
"""

import json

import pytest

from repro.errors import EpochTimeoutError, ServingError, WorkerFailure
from repro.serving import (
    CRASH_KINDS,
    DEFAULT_SLO_MIX,
    CrashEvent,
    CrashSchedule,
    ShardedFleetScheduler,
    ShardSlice,
    generate_crash_schedule,
    generate_failure_schedule,
    generate_fleet_trace,
    merge_fleet_summaries,
)
from repro.serving.shard import partition_chips

#: Crash-matrix shape: injected epochs x worker counts x variants.
CRASH_EPOCHS = (0, 3)
WORKER_COUNTS = (2, 4)
VARIANTS = ("plain", "faults", "elastic")

#: Small fences so even a 24-session trace crosses many epochs — the
#: crash matrix needs epochs to exist before it can crash them.
EPOCH_CYCLES = 2_000_000

_FAULTS = generate_failure_schedule(3, chips=8, horizon_cycles=30_000_000,
                                    failures=2,
                                    mean_outage_cycles=8_000_000)
_VARIANT_KWARGS = {
    "plain": {},
    "faults": {"faults": _FAULTS},
    "elastic": {"elastic": "shrink_then_preempt"},
}


def fleet_trace(seed=11, sessions=24, chips=8, **kwargs):
    kwargs.setdefault("arrival_process", "bursty")
    kwargs.setdefault("slo_mix", DEFAULT_SLO_MIX)
    return generate_fleet_trace(seed, sessions, chips=chips,
                                max_cores=16, **kwargs)


def run_sharded(trace, workers, variant="plain", crashes=None, **kwargs):
    kwargs.setdefault("epoch_cycles", EPOCH_CYCLES)
    fleet = ShardedFleetScheduler.homogeneous(
        8, cores=16, shards=4, workers=workers, crashes=crashes,
        respawn_backoff_seconds=0.0, **_VARIANT_KWARGS[variant], **kwargs)
    return fleet.serve(list(trace))


def canonical(summary):
    return json.dumps(summary, sort_keys=True)


_ORACLES: dict[str, dict] = {}


def oracle(variant):
    """Crash-free workers=1 digest per variant (computed once)."""
    if variant not in _ORACLES:
        _ORACLES[variant] = run_sharded(fleet_trace(), 1, variant)
    return _ORACLES[variant]


# -- crash schedule validation ----------------------------------------------

class TestCrashSchedule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServingError, match="unknown crash kind"):
            CrashEvent("segfault", shard=0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ServingError, match="shard must be >= 0"):
            CrashEvent("crash", shard=-1)

    def test_hang_needs_positive_duration(self):
        with pytest.raises(ServingError, match="positive hang_seconds"):
            CrashEvent("hang", shard=0, epoch=1)

    def test_restore_crash_needs_positive_count(self):
        with pytest.raises(ServingError, match="count >= 1"):
            CrashEvent("crash_on_restore", shard=0, count=0)

    def test_events_normalized_to_epoch_order(self):
        schedule = CrashSchedule((
            CrashEvent("crash", shard=1, epoch=5),
            CrashEvent("crash", shard=0, epoch=2),
        ))
        assert [e.epoch for e in schedule.events] == [2, 5]

    def test_validate_rejects_out_of_range_shard(self):
        schedule = CrashSchedule((CrashEvent("crash", shard=7),))
        with pytest.raises(ServingError, match="only has 4 shards"):
            schedule.validate(4)

    def test_coordinator_validates_at_construction(self):
        crashes = CrashSchedule((CrashEvent("crash", shard=9),))
        with pytest.raises(ServingError, match="only has 4 shards"):
            ShardedFleetScheduler.homogeneous(
                8, cores=16, shards=4, workers=2, crashes=crashes)

    def test_schedule_requires_worker_pool(self):
        crashes = CrashSchedule((CrashEvent("crash", shard=0),))
        with pytest.raises(ServingError, match="workers > 1"):
            ShardedFleetScheduler.homogeneous(
                8, cores=16, shards=4, workers=1, crashes=crashes)

    def test_generated_schedule_is_seed_deterministic(self):
        first = generate_crash_schedule(7, shards=4, epochs=20)
        again = generate_crash_schedule(7, shards=4, epochs=20)
        other = generate_crash_schedule(8, shards=4, epochs=20)
        assert first == again
        assert first != other
        assert all(e.kind in CRASH_KINDS for e in first.events)
        assert all(e.shard < 4 and e.epoch < 20 for e in first.events)

    def test_generator_rejects_unknown_kind(self):
        with pytest.raises(ServingError, match="unknown crash kind"):
            generate_crash_schedule(7, shards=4, epochs=20,
                                    kinds=("oom",))


# -- supervision knob validation ---------------------------------------------

class TestSupervisionKnobs:
    def test_bad_checkpoint_cadence(self):
        with pytest.raises(ServingError, match="checkpoint_every"):
            ShardedFleetScheduler.homogeneous(4, cores=16,
                                              checkpoint_every=0)

    def test_bad_timeout(self):
        with pytest.raises(ServingError, match="epoch_timeout_seconds"):
            ShardedFleetScheduler.homogeneous(4, cores=16,
                                              epoch_timeout_seconds=0)

    def test_bad_budget(self):
        with pytest.raises(ServingError, match="respawn_budget"):
            ShardedFleetScheduler.homogeneous(4, cores=16,
                                              respawn_budget=0)

    def test_error_hierarchy(self):
        # Supervisors catch WorkerFailure for both failure modes, and
        # legacy callers catching ServingError still see both.
        assert issubclass(EpochTimeoutError, WorkerFailure)
        assert issubclass(WorkerFailure, ServingError)


# -- slice checkpoint round-trip ---------------------------------------------

class TestSliceCheckpoint:
    def test_checkpoint_restores_mid_run_slice(self):
        # Checkpoints are *fence* checkpoints: like the coordinator,
        # only deal sessions whose arrival lies inside the epoch (an
        # in-flight arrival injector is not slice state).
        from repro.serving.shard import AdmitOrder, EpochPlan
        configs = [c for c in
                   ShardedFleetScheduler.homogeneous(2, cores=16).configs]
        trace = fleet_trace(5, sessions=6, chips=2)
        assert partition_chips(2, 1) == [(0, 1)]
        by_epoch: dict[int, list[AdmitOrder]] = {}
        for session in trace:
            by_epoch.setdefault(session.arrival_cycle // EPOCH_CYCLES,
                                []).append(AdmitOrder(session))
        plans = {epoch: EpochPlan(admissions=tuple(orders))
                 for epoch, orders in by_epoch.items()}
        last = max(plans)

        def drive(slice_, start_epoch=0, first_report=None):
            reports = [] if first_report is None else [first_report]
            for epoch in range(start_epoch, 200):
                report = slice_.run_epoch((epoch + 1) * EPOCH_CYCLES,
                                          plans.get(epoch))
                reports.append(report)
                if (epoch >= last and report["pending"] == 0
                        and report["active"] == 0):
                    return reports
            raise AssertionError("slice never drained")

        hz = configs[0].frequency_hz
        whole = ShardSlice(0, list(configs))
        reports_a = drive(whole)
        direct = canonical(whole.collect()["metrics"].summary(hz))

        # Same drive, but serialize/deserialize the slice at fence 1.
        resumed = ShardSlice(0, list(configs))
        first = resumed.run_epoch(EPOCH_CYCLES, plans.get(0))
        revived = ShardSlice.from_checkpoint(
            resumed.checkpoint(), shard_id=0, configs=list(configs))
        reports_b = drive(revived, start_epoch=1, first_report=first)
        assert reports_b == reports_a
        assert canonical(
            revived.collect()["metrics"].summary(hz)) == direct

    def test_delta_checkpoints_ship_only_the_metrics_tail(self):
        # The first checkpoint is always full (base None); subsequent
        # delta checkpoints carry only the metrics history appended
        # since, and must shrink versus re-shipping everything. Either
        # way the live metrics object is untouched by the dump.
        import pickle
        configs = [c for c in
                   ShardedFleetScheduler.homogeneous(2, cores=16).configs]
        slice_ = ShardSlice(0, list(configs))
        from repro.serving.shard import AdmitOrder, EpochPlan
        trace = fleet_trace(5, sessions=6, chips=2)
        plan = EpochPlan(admissions=tuple(
            AdmitOrder(s) for s in trace
            if s.arrival_cycle < EPOCH_CYCLES))
        slice_.run_epoch(EPOCH_CYCLES, plan)
        first = slice_.checkpoint(delta=True)
        assert pickle.loads(first)["base"] is None
        for epoch in range(1, 30):
            report = slice_.run_epoch((epoch + 1) * EPOCH_CYCLES, None)
            if report["pending"] == 0 and report["active"] == 0:
                break
        records = len(slice_.fleet.metrics.records)
        full = slice_.checkpoint()
        delta = slice_.checkpoint(delta=True)
        assert len(delta) < len(full)
        shipped = pickle.loads(delta)
        assert shipped["base"] is not None
        assert len(shipped["fleet"]["metrics"].records) < records
        assert len(slice_.fleet.metrics.records) == records

    def test_delta_blob_cannot_restore_alone(self):
        configs = [c for c in
                   ShardedFleetScheduler.homogeneous(2, cores=16).configs]
        slice_ = ShardSlice(0, list(configs))
        slice_.run_epoch(EPOCH_CYCLES, None)
        slice_.checkpoint(delta=True)
        slice_.run_epoch(2 * EPOCH_CYCLES, None)
        delta = slice_.checkpoint(delta=True)
        with pytest.raises(ServingError, match="delta checkpoint"):
            ShardSlice.from_checkpoint(delta, shard_id=0,
                                       configs=list(configs))


# -- the recovery determinism contract ---------------------------------------

class TestCrashMatrix:
    """Recovered summaries byte-equal the crash-free oracle."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("crash_epoch", CRASH_EPOCHS)
    def test_single_crash_recovers(self, crash_epoch, workers, variant):
        crashes = CrashSchedule((
            CrashEvent("crash", shard=1, epoch=crash_epoch),))
        summary = run_sharded(fleet_trace(), workers, variant,
                              crashes=crashes)
        recovery = summary.pop("recovery")
        assert recovery["respawns"] >= 1
        assert recovery["degraded_shards"] == 0
        assert canonical(summary) == canonical(oracle(variant))

    def test_crash_at_every_epoch_matches_oracle(self):
        epochs = oracle("plain")["sharding"]["epochs"]
        crashes = CrashSchedule(tuple(
            CrashEvent("crash", shard=0, epoch=epoch)
            for epoch in range(epochs)))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes)
        recovery = summary.pop("recovery")
        assert recovery["respawns"] == epochs
        assert recovery["replayed_epochs"] == epochs
        assert canonical(summary) == canonical(oracle("plain"))

    def test_hang_trips_watchdog_and_recovers(self):
        crashes = CrashSchedule((
            CrashEvent("hang", shard=1, epoch=2, hang_seconds=10.0),))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes,
                              epoch_timeout_seconds=0.25)
        recovery = summary.pop("recovery")
        assert recovery["timeouts"] == 1
        assert recovery["respawns"] >= 1
        assert canonical(summary) == canonical(oracle("plain"))

    def test_seeded_schedule_recovers(self):
        epochs = oracle("plain")["sharding"]["epochs"]
        crashes = generate_crash_schedule(
            23, shards=4, epochs=epochs, events=3, kinds=("crash",))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes)
        summary.pop("recovery")
        assert canonical(summary) == canonical(oracle("plain"))

    def test_recovery_without_checkpoints_replays_from_genesis(self):
        crashes = CrashSchedule((CrashEvent("crash", shard=0, epoch=3),))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes,
                              checkpoint_every=None)
        recovery = summary.pop("recovery")
        assert recovery["checkpoints"] == 0
        assert recovery["checkpoint_bytes"] == 0
        # Epochs 0..3 re-run from a fresh slice.
        assert recovery["replayed_epochs"] == 4
        assert canonical(summary) == canonical(oracle("plain"))

    def test_sparse_checkpoint_cadence_recovers(self):
        crashes = CrashSchedule((CrashEvent("crash", shard=1, epoch=7),))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes,
                              checkpoint_every=5)
        recovery = summary.pop("recovery")
        # Last checkpoint at epoch 4 -> epochs 5, 6, 7 replayed.
        assert recovery["replayed_epochs"] == 3
        assert canonical(summary) == canonical(oracle("plain"))

    def test_crash_free_multiworker_run_has_no_recovery_block(self):
        summary = run_sharded(fleet_trace(), 2)
        assert "recovery" not in summary
        assert canonical(summary) == canonical(oracle("plain"))


# -- graceful degradation ----------------------------------------------------

class TestGracefulDegradation:
    def test_budget_exhaustion_degrades_and_completes(self):
        crashes = CrashSchedule((
            CrashEvent("crash", shard=2, epoch=1),
            CrashEvent("crash_on_restore", shard=2, count=10),
        ))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes,
                              respawn_budget=2)
        recovery = summary.pop("recovery")
        # Both shards of the dead worker fold in-process, and the
        # block is honest about it.
        assert recovery["degraded_shards"] == 2
        assert recovery["respawns"] == 2
        assert canonical(summary) == canonical(oracle("plain"))

    def test_restore_crash_within_budget_retries_through(self):
        crashes = CrashSchedule((
            CrashEvent("crash", shard=2, epoch=1),
            CrashEvent("crash_on_restore", shard=2, count=1),
        ))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes,
                              respawn_budget=3)
        recovery = summary.pop("recovery")
        # Attempt 1 dies during restore, attempt 2 sticks.
        assert recovery["respawns"] == 2
        assert recovery["degraded_shards"] == 0
        assert canonical(summary) == canonical(oracle("plain"))

    def test_collect_crash_folds_at_finalize(self):
        crashes = CrashSchedule((CrashEvent("crash_on_collect", shard=3),))
        summary = run_sharded(fleet_trace(), 2, crashes=crashes)
        recovery = summary.pop("recovery")
        assert recovery["degraded_shards"] == 2
        assert canonical(summary) == canonical(oracle("plain"))


# -- recovery block merge ----------------------------------------------------

class TestRecoveryMerge:
    def test_merge_attaches_recovery_block_verbatim(self):
        fleet = ShardedFleetScheduler.homogeneous(
            4, cores=16, shards=2, workers=1, epoch_cycles=EPOCH_CYCLES)
        fleet.serve(fleet_trace(3, sessions=4, chips=4))
        block = {"respawns": 2, "timeouts": 1, "replayed_epochs": 2,
                 "checkpoints": 4, "checkpoint_bytes": 123,
                 "degraded_shards": 0}
        merged = merge_fleet_summaries(
            fleet.shard_metrics, [16, 16], [0, 2], 940_000_000,
            recovery=block)
        assert merged["recovery"] == block
        plain = merge_fleet_summaries(
            fleet.shard_metrics, [16, 16], [0, 2], 940_000_000)
        assert "recovery" not in plain
