"""Warm-restart checkpoints: FleetScheduler snapshot()/restore().

The checkpoint contract: a snapshot taken between ``run`` calls is a
picklable dict from which :meth:`FleetScheduler.restore` rebuilds a
scheduler — in the same process or a fresh one — whose continued run
produces byte-identical aggregate results to the run that never
stopped. Pricing caches are behavioral state and must round-trip
(:meth:`CostModel.snapshot_state`), or the restored timeline drifts.
"""

import json
import pickle

import pytest

from repro.errors import HypervisorError
from repro.serving import (
    DEFAULT_SLO_MIX,
    FleetScheduler,
    generate_failure_schedule,
    generate_fleet_trace,
)


def fleet_trace(seed=11, sessions=40, chips=4):
    return generate_fleet_trace(seed, sessions, chips=chips, max_cores=16,
                                arrival_process="bursty",
                                slo_mix=DEFAULT_SLO_MIX)


def summary_of(fleet):
    return json.dumps(
        fleet.metrics.summary(fleet.chips[0].chip.config.frequency_hz),
        sort_keys=True)


def run_split(trace, pause_at, faults=None, **kwargs):
    """Run to ``pause_at``, snapshot, restore, finish; plus the oracle."""
    fleet = FleetScheduler.homogeneous(4, cores=16, faults=faults, **kwargs)
    fleet.submit(trace)
    fleet.run(until=pause_at)
    state = fleet.snapshot()
    restored = FleetScheduler.restore(state, **kwargs)
    restored.run()
    oracle = FleetScheduler.homogeneous(4, cores=16, faults=faults, **kwargs)
    oracle.submit(trace)
    oracle.run()
    return restored, oracle, state


class TestSnapshotRoundTrip:
    def test_snapshot_is_picklable_and_detached(self):
        fleet = FleetScheduler.homogeneous(4, cores=16)
        fleet.submit(fleet_trace())
        fleet.run(until=5_000_000)
        state = fleet.snapshot()
        blob = pickle.dumps(state)
        assert pickle.loads(blob)["cycle"] == state["cycle"]
        # Mutating the snapshot must not reach back into the scheduler.
        state["pending"].clear()
        assert fleet.pending_sessions or True  # no exception = detached

    def test_roundtrip_preserves_snapshot(self):
        # snapshot -> restore -> snapshot again: identical checkpoint.
        fleet = FleetScheduler.homogeneous(4, cores=16)
        fleet.submit(fleet_trace())
        fleet.run(until=5_000_000)
        state = fleet.snapshot()
        restored = FleetScheduler.restore(state)
        again = restored.snapshot()
        assert pickle.dumps(again) == pickle.dumps(state)

    def test_mid_run_snapshot_captures_live_state(self):
        fleet = FleetScheduler.homogeneous(4, cores=16)
        fleet.submit(fleet_trace())
        fleet.run(until=5_000_000)
        state = fleet.snapshot()
        assert state["cycle"] == 5_000_000
        assert state["active"], "pause point should have residents"
        assert state["remaining_trace"], "pause point should have arrivals"

    def test_restore_into_used_hypervisor_rejected(self):
        fleet = FleetScheduler.homogeneous(4, cores=16)
        fleet.submit(fleet_trace())
        fleet.run(until=5_000_000)
        state = fleet.snapshot()
        target = FleetScheduler.homogeneous(4, cores=16)
        target.submit(fleet_trace(seed=3))
        target.run(until=5_000_000)
        with pytest.raises(HypervisorError, match="resident"):
            target.chips[0].hypervisor.restore_state(state["chips"][0])


class TestContinuedRunEquivalence:
    @pytest.mark.parametrize("pause_at", [2_000_000, 5_000_000, 20_000_000])
    def test_continued_equals_oracle(self, pause_at):
        trace = fleet_trace()
        restored, oracle, _ = run_split(trace, pause_at)
        assert summary_of(restored) == summary_of(oracle)

    def test_continued_equals_oracle_with_elastic(self):
        trace = fleet_trace(seed=23)
        restored, oracle, _ = run_split(trace, 5_000_000, policy="priority",
                                        elastic="shrink_then_preempt")
        assert summary_of(restored) == summary_of(oracle)

    def test_continued_equals_oracle_under_faults(self):
        trace = fleet_trace(seed=3)
        faults = generate_failure_schedule(seed=7, chips=4,
                                           horizon_cycles=40_000_000,
                                           failures=3)
        restored, oracle, _ = run_split(trace, 5_000_000, faults=faults)
        assert summary_of(restored) == summary_of(oracle)

    def test_cost_cache_rides_the_checkpoint(self):
        # Memoized prices are keyed (config, model, shape) but priced on
        # the *first* placement seen — an empty cache after restore
        # would re-price on different vNPUs and drift the timeline.
        trace = fleet_trace()
        _, _, state = run_split(trace, 5_000_000)
        assert state["cost_tier"] == "analytic"
        assert state["cost_state"]["cache"], "pause point should have prices"

    def test_cached_tier_counters_round_trip(self):
        trace = fleet_trace()
        fleet = FleetScheduler.homogeneous(4, cores=16, cost_model="cached")
        fleet.submit(trace)
        fleet.run(until=5_000_000)
        state = fleet.snapshot()
        restored = FleetScheduler.restore(state, cost_model="cached")
        assert (restored.cost_model.cache_stats()
                == fleet.cost_model.cache_stats())
