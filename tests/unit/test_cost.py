"""Unit tests for the unified fidelity-tiered cost engine."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.cost import (
    AnalyticCostModel,
    CachedCostModel,
    CostModel,
    ExecutorCostModel,
    WorkloadCost,
    available_cost_models,
    canonical_vnpu,
    coerce_cost_model,
    lower_mapped_task,
    migration_cycles,
    migration_data_cycles,
    placement_class,
    register_cost_model,
    resolve_cost_model,
    unregister_cost_model,
)
from repro.core.topology_mapping import MappingResult
from repro.errors import ServingError
from repro.serving import ClusterScheduler, TenantSession
from repro.workloads.zoo import SERVING_MODEL_BUILDERS


def session(session_id=0, rows=2, cols=2, model="mobilenet", inferences=5,
            memory_per_core=32 * MB):
    return TenantSession(
        session_id=session_id, tenant=f"t{session_id}", arrival_cycle=0,
        rows=rows, cols=cols, memory_bytes=rows * cols * memory_per_core,
        model=model, inferences=inferences,
    )


def provisioned(cores=16, rows=2, cols=2, memory=128 * MB, klass="exact"):
    chip = Chip(sim_config(cores))
    hypervisor = Hypervisor(chip)
    vnpu = canonical_vnpu(
        hypervisor, VNpuSpec("t", MeshShape(rows, cols), memory), klass)
    return chip, vnpu


class TestRegistryAndCoercion:
    def test_builtin_tiers_registered(self):
        assert set(available_cost_models()) >= {"analytic", "cached",
                                                "executor"}

    def test_resolve_returns_class(self):
        assert resolve_cost_model("analytic") is AnalyticCostModel

    def test_unknown_tier_names_value_and_lists_tiers(self):
        with pytest.raises(ServingError) as err:
            resolve_cost_model("quantum")
        message = str(err.value)
        assert "'quantum'" in message
        for tier in available_cost_models():
            assert tier in message

    def test_coerce_unknown_name_raises_serving_error(self):
        with pytest.raises(ServingError) as err:
            coerce_cost_model("nope")
        assert "'nope'" in str(err.value)
        assert "analytic" in str(err.value)

    def test_coerce_name_returns_fresh_instance(self):
        a = coerce_cost_model("analytic")
        b = coerce_cost_model("analytic")
        assert isinstance(a, AnalyticCostModel)
        assert a is not b

    def test_coerce_rejects_class_object(self):
        with pytest.raises(ServingError) as err:
            coerce_cost_model(AnalyticCostModel)
        assert "AnalyticCostModel" in str(err.value)

    def test_coerce_rejects_non_cost_model(self):
        with pytest.raises(ServingError):
            coerce_cost_model(object())

    def test_coerce_passes_instances_through(self):
        model = AnalyticCostModel()
        assert coerce_cost_model(model) is model

    def test_register_rejects_non_subclass(self):
        with pytest.raises(ServingError):
            register_cost_model(object)

    def test_custom_tier_registration_roundtrip(self):
        class FlatCostModel(CostModel):
            name = "flat"

            def workload_cost(self, chip, session, vnpu):
                return WorkloadCost(0, 1000, tier=self.name, source="flat")

        register_cost_model(FlatCostModel)
        try:
            model = coerce_cost_model("flat")
            chip, vnpu = provisioned()
            assert model.service_cycles(chip, session(inferences=3), vnpu) \
                == 3000 + vnpu.setup_cycles
        finally:
            unregister_cost_model("flat")


class TestWorkloadCost:
    def test_service_cycles_formula(self):
        cost = WorkloadCost(100, 10, tier="t", source="s")
        assert cost.service_cycles(5, setup_cycles=7) == 100 + 50 + 7

    def test_service_cycles_floors_at_one(self):
        assert WorkloadCost(0, 0, tier="t", source="s").service_cycles(0) == 1


class TestCharges:
    def test_data_cycles_use_slower_memory_system(self):
        fast = sim_config(16)
        slow = sim_config(16)
        # Same config -> symmetric; charge is positive and linear-ish.
        one = migration_data_cycles(fast, slow, 64 * MB)
        two = migration_data_cycles(fast, slow, 128 * MB)
        assert one > 0
        assert two >= 2 * one - 1

    def test_zero_resident_bytes_cost_zero(self):
        config = sim_config(16)
        assert migration_data_cycles(config, config, 0) == 0

    def test_migration_adds_reconfig(self):
        config = sim_config(16)
        base = migration_data_cycles(config, config, 1 * MB)
        assert migration_cycles(config, config, 1 * MB, 555) == base + 555

    def test_hypervisor_routes_migration_through_charges(self):
        chip = Chip(sim_config(16))
        hypervisor = Hypervisor(chip)
        vnpu = hypervisor.create_vnpu(
            VNpuSpec("m", MeshShape(2, 2), 64 * MB))
        resident = vnpu.memory_bytes
        migrated, cost = hypervisor.migrate_vnpu(vnpu.vmid)
        assert cost == migration_cycles(chip.config, chip.config,
                                        resident, migrated.setup_cycles)


class TestPlacementClass:
    def test_exact(self):
        mapping = MappingResult("s", {0: 0}, 0.0, True)
        assert placement_class(mapping) == "exact"

    def test_stretched(self):
        mapping = MappingResult("s", {0: 0}, 2.0, True)
        assert placement_class(mapping) == "stretched"

    def test_fragmented_wins_over_distance(self):
        mapping = MappingResult("s", {0: 0}, 0.0, False)
        assert placement_class(mapping) == "fragmented"

    def test_canonical_exact_has_zero_distance(self):
        _chip, vnpu = provisioned(klass="exact")
        assert vnpu.mapping.distance == 0
        assert vnpu.mapping.connected

    def test_canonical_fragmented_punches_holes(self):
        chip, vnpu = provisioned(rows=3, cols=3, memory=288 * MB,
                                 klass="fragmented")
        # Blockers occupy cores, so the 3x3 tenant cannot sit in the
        # top-left exact block the empty-chip mapper would pick.
        assert vnpu.mapping.strategy == "fragmented"

    def test_unknown_class_rejected(self):
        chip = Chip(sim_config(16))
        with pytest.raises(ServingError):
            canonical_vnpu(Hypervisor(chip),
                           VNpuSpec("t", MeshShape(2, 2), 64 * MB),
                           "warped")


class TestLowering:
    @staticmethod
    def mapped(model="mobilenet", rows=2, cols=2):
        config = sim_config(16)
        graph = SERVING_MODEL_BUILDERS[model]()
        plan = partition(graph, rows * cols,
                         weight_zone_bytes=config.core.weight_zone_bytes)
        from repro.arch.topology import Topology
        topology = Topology.mesh2d(rows, cols, name="req")
        return map_stages(plan, topology, name=graph.name)

    def test_lowered_programs_validate(self):
        mapped = self.mapped()
        warmup, iteration = lower_mapped_task(mapped, 128 * MB)
        allowed = set(mapped.vcores)
        warmup.validate(allowed_cores=allowed)
        iteration.validate(allowed_cores=allowed)

    def test_iteration_program_carries_flows_and_compute(self):
        mapped = self.mapped()
        _warmup, iteration = lower_mapped_task(mapped, 128 * MB)
        assert iteration.total_noc_bytes() == mapped.total_flow_bytes()
        assert len(iteration) > 0

    def test_warmup_carries_resident_weights(self):
        mapped = self.mapped()
        warmup, _iteration = lower_mapped_task(mapped, 128 * MB)
        resident = sum(mapped.weight_bytes.values())
        assert warmup.total_dma_bytes() == resident

    def test_va_window_wraps_instead_of_escaping(self):
        mapped = self.mapped(model="resnet18")
        span = 4 * MB  # far smaller than resnet18's weights
        warmup, iteration = lower_mapped_task(mapped, span)
        base = 0x1_0000
        for program in (*warmup.programs(), *iteration.programs()):
            for instruction in program.instructions:
                if hasattr(instruction, "virtual_address"):
                    va = instruction.virtual_address
                    assert base <= va < base + span
                    assert va + instruction.nbytes <= base + span

    def test_non_positive_span_rejected(self):
        with pytest.raises(ServingError):
            lower_mapped_task(self.mapped(), 0)


class TestAnalyticTier:
    def test_matches_legacy_formula(self):
        chip, vnpu = provisioned()
        model = AnalyticCostModel()
        s = session(inferences=9)
        cost = model.workload_cost(chip, s, vnpu)
        assert model.service_cycles(chip, s, vnpu) == (
            cost.warmup_cycles + 9 * cost.iteration_cycles
            + vnpu.setup_cycles)

    def test_memoizes_by_shape(self):
        chip, vnpu = provisioned()
        model = AnalyticCostModel()
        model.workload_cost(chip, session(), vnpu)
        assert len(model._cache) == 1
        model.workload_cost(chip, session(session_id=1), vnpu)
        assert len(model._cache) == 1

    def test_unknown_model_raises(self):
        chip, vnpu = provisioned()
        with pytest.raises(ServingError) as err:
            AnalyticCostModel().workload_cost(
                chip, session(model="nonesuch"), vnpu)
        assert "nonesuch" in str(err.value)

    def test_register_model_rejects_duplicates(self):
        model = AnalyticCostModel()
        with pytest.raises(ServingError):
            model.register_model("mobilenet", lambda: None)


class TestExecutorTier:
    def test_deterministic_across_instances(self):
        config = sim_config(16)
        a = ExecutorCostModel().measure(config, "mobilenet", 2, 2,
                                        128 * MB, "exact")
        b = ExecutorCostModel().measure(config, "mobilenet", 2, 2,
                                        128 * MB, "exact")
        assert a == b

    def test_counts_runs_not_memoized(self):
        config = sim_config(16)
        model = ExecutorCostModel()
        model.measure(config, "mobilenet", 2, 2, 128 * MB, "exact")
        model.measure(config, "mobilenet", 2, 2, 128 * MB, "exact")
        assert model.runs == 2

    def test_positive_cycles_all_classes(self):
        config = sim_config(16)
        model = ExecutorCostModel()
        for klass in ("exact", "stretched", "fragmented"):
            cost = model.measure(config, "gpt2-small", 2, 3, 192 * MB,
                                 klass)
            assert cost.iteration_cycles > 0
            assert cost.placement_class == klass
            assert cost.source == "executor"

    def test_invalid_measure_iterations(self):
        with pytest.raises(ServingError):
            ExecutorCostModel(measure_iterations=0)

    def test_workload_cost_uses_session_placement_class(self):
        chip, vnpu = provisioned(rows=2, cols=2)
        model = ExecutorCostModel()
        cost = model.workload_cost(chip, session(), vnpu)
        assert cost.placement_class == placement_class(vnpu.mapping)


class TestCachedTier:
    def test_hit_reproduces_executor_exactly(self):
        chip, vnpu = provisioned()
        cached = CachedCostModel()
        first = cached.workload_cost(chip, session(), vnpu)
        hit = cached.workload_cost(chip, session(session_id=1), vnpu)
        assert (hit.warmup_cycles, hit.iteration_cycles) \
            == (first.warmup_cycles, first.iteration_cycles)
        truth = ExecutorCostModel().measure(
            chip.config, "mobilenet", 2, 2, 128 * MB,
            placement_class(vnpu.mapping))
        assert hit.warmup_cycles == truth.warmup_cycles
        assert hit.iteration_cycles == truth.iteration_cycles
        assert cached.cache_stats()["hits"] == 1
        assert cached.cache_stats()["hit_rate"] == 0.5

    def test_budget_exhausted_interpolates_from_donor(self):
        chip, vnpu = provisioned()
        cached = CachedCostModel(max_executor_runs=1)
        seeded = cached.workload_cost(chip, session(rows=2, cols=2), vnpu)
        assert seeded.source == "executor"
        chip2, vnpu2 = provisioned(rows=2, cols=3, memory=192 * MB)
        interp = cached.workload_cost(
            chip2, session(rows=2, cols=3), vnpu2)
        assert interp.source == "interpolated"
        assert interp.iteration_cycles > 0
        assert cached.cache_stats()["interpolations"] == 1

    def test_no_donor_falls_back_to_analytic(self):
        chip, vnpu = provisioned()
        cached = CachedCostModel(max_executor_runs=0)
        cost = cached.workload_cost(chip, session(), vnpu)
        analytic = AnalyticCostModel().workload_cost(chip, session(), vnpu)
        assert cost.source == "analytic"
        assert cost.iteration_cycles == analytic.iteration_cycles

    def test_interpolation_scales_with_analytic_ratio(self):
        chip, vnpu = provisioned()
        cached = CachedCostModel(max_executor_runs=1)
        donor = cached.workload_cost(chip, session(model="resnet18"), vnpu)
        chip2, vnpu2 = provisioned(rows=3, cols=3, memory=288 * MB)
        interp = cached.workload_cost(
            chip2, session(rows=3, cols=3, model="resnet18"), vnpu2)
        analytic = AnalyticCostModel()
        here = analytic.workload_cost(
            chip2, session(rows=3, cols=3, model="resnet18"), vnpu2)
        there = analytic.workload_cost(
            chip, session(model="resnet18"), vnpu)
        expected = round(donor.iteration_cycles * here.iteration_cycles
                         / there.iteration_cycles)
        assert interp.iteration_cycles == max(1, expected)

    def test_negative_budget_rejected(self):
        with pytest.raises(ServingError):
            CachedCostModel(max_executor_runs=-1)

    def test_register_model_reaches_sub_tiers(self):
        cached = CachedCostModel()
        builder = SERVING_MODEL_BUILDERS["mobilenet"]
        cached.register_model("tiny", builder)
        assert "tiny" in cached.models
        assert "tiny" in cached._executor.models
        assert "tiny" in cached._analytic.models


class TestSchedulerIntegration:
    @staticmethod
    def run_scheduler(cost_model):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, cost_model=cost_model)
        trace = [session(session_id=i, inferences=3) for i in range(3)]
        trace = [TenantSession(
            session_id=s.session_id, tenant=s.tenant,
            arrival_cycle=i * 1000, rows=s.rows, cols=s.cols,
            memory_bytes=s.memory_bytes, model=s.model,
            inferences=s.inferences) for i, s in enumerate(trace)]
        metrics = scheduler.serve(trace)
        return scheduler, metrics

    def test_scheduler_accepts_tier_names(self):
        for tier in ("analytic", "cached"):
            scheduler, metrics = self.run_scheduler(tier)
            assert metrics.records
            assert scheduler.cost_model.name == tier

    def test_scheduler_rejects_unknown_tier(self):
        chip = Chip(sim_config(16))
        with pytest.raises(ServingError) as err:
            ClusterScheduler(chip, cost_model="psychic")
        assert "'psychic'" in str(err.value)

    def test_estimator_alias_is_cost_model(self):
        scheduler, _metrics = self.run_scheduler("analytic")
        assert scheduler.estimator is scheduler.cost_model

    def test_cached_and_analytic_complete_same_sessions(self):
        _s1, analytic = self.run_scheduler("analytic")
        _s2, cached = self.run_scheduler("cached")
        assert ({r.session_id for r in analytic.records}
                == {r.session_id for r in cached.records})


class TestCanonicalFallback:
    def test_fragmented_fallback_releases_blockers_on_memory_pressure(self):
        """Blockers eating the last buddy block must not fail the probe."""
        from dataclasses import replace
        base = sim_config(16)
        config = replace(base, memory=replace(base.memory,
                                              capacity_bytes=64 * MB))
        chip = Chip(config)
        hypervisor = Hypervisor(chip)
        # Demand the entire (shrunk) buddy capacity: the hole blockers'
        # memory makes the first attempt unsatisfiable, so canonical_vnpu
        # must tear them down and retry on the clean chip.
        spec = VNpuSpec("greedy", MeshShape(2, 2),
                        hypervisor.buddy.capacity)
        vnpu = canonical_vnpu(hypervisor, spec, "fragmented")
        assert vnpu.memory_bytes == hypervisor.buddy.capacity
        assert [v.vmid for v in hypervisor.vnpus] == [vnpu.vmid]


class TestScaledGuard:
    def test_zero_analytic_donor_falls_back_to_local_analytic(self):
        from repro.cost.cached import _scaled
        assert _scaled(10_000, 777, 0) == 777
        assert _scaled(10_000, 777, -1) == 777
        assert _scaled(100, 50, 25) == 200


class TestFleetCostModel:
    def test_fleet_serves_with_cached_tier(self):
        from repro.serving import FleetScheduler
        trace = [
            TenantSession(session_id=i, tenant=f"t{i}",
                          arrival_cycle=i * 1000, rows=2, cols=2,
                          memory_bytes=128 * MB, model="mobilenet",
                          inferences=2)
            for i in range(4)
        ]
        fleet = FleetScheduler.homogeneous(2, cores=16, cost_model="cached")
        metrics = fleet.serve(trace, limit=50_000_000_000)
        assert len(metrics.records) == 4
        assert fleet.estimator is fleet.cost_model
        assert fleet.cost_model.cache_stats()["hits"] == 3

    def test_fleet_rejects_unknown_tier(self):
        from repro.serving import FleetScheduler
        with pytest.raises(ServingError) as err:
            FleetScheduler.homogeneous(2, cores=16, cost_model="warp")
        assert "'warp'" in str(err.value)


class TestRunArgumentValidation:
    def test_until_with_limit_rejected(self):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip)
        scheduler.submit([session()])
        with pytest.raises(ServingError, match="not both"):
            scheduler.run(until=100, limit=200)

    def test_fleet_until_with_limit_rejected(self):
        from repro.serving import FleetScheduler
        fleet = FleetScheduler.homogeneous(2, cores=16)
        fleet.submit([session()])
        with pytest.raises(ServingError, match="not both"):
            fleet.run(until=100, limit=200)


class TestEstimatorSetterCompat:
    def test_assigning_estimator_swaps_cost_model(self):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip)
        replacement = AnalyticCostModel()
        scheduler.estimator = replacement  # pre-cost-engine idiom
        assert scheduler.cost_model is replacement
        scheduler.estimator = "cached"
        assert isinstance(scheduler.cost_model, CachedCostModel)
        with pytest.raises(ServingError):
            scheduler.estimator = object()

    def test_fleet_estimator_setter(self):
        from repro.serving import FleetScheduler
        fleet = FleetScheduler.homogeneous(2, cores=16)
        fleet.estimator = "analytic"
        assert isinstance(fleet.cost_model, AnalyticCostModel)
