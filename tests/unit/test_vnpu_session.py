"""Unit tests for the VirtualNPU abstraction and session API."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape, Topology
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import CompilationError, ConfigError
from repro.runtime.session import (
    compile_bare_metal,
    compile_model,
    deploy,
    estimate_together,
)
from repro.workloads import resnet, transformer_block


def make(rows=2, cols=2, **kwargs):
    chip = Chip(sim_config(36))
    hv = Hypervisor(chip)
    vnpu = hv.create_vnpu(
        VNpuSpec("t", MeshShape(rows, cols), 64 * MB, **kwargs))
    return chip, hv, vnpu


class TestVNpuSpec:
    def test_meshshape_coerced_to_topology(self):
        spec = VNpuSpec("s", MeshShape(2, 3), 1 * MB)
        assert isinstance(spec.topology, Topology)
        assert spec.core_count == 6

    def test_explicit_topology_accepted(self):
        ring = Topology.ring(4)
        spec = VNpuSpec("s", ring, 1 * MB)
        assert spec.topology is ring

    def test_zero_memory_rejected(self):
        with pytest.raises(ConfigError):
            VNpuSpec("s", MeshShape(1, 1), 0)


class TestVirtualNpu:
    def test_virtual_topology_is_the_request(self):
        _, _, vnpu = make(2, 3)
        assert vnpu.virtual_topology().node_count == 6

    def test_mapped_topology_lives_on_chip(self):
        chip, _, vnpu = make()
        mapped = vnpu.mapped_topology(chip.topology)
        assert set(mapped.nodes) == set(vnpu.physical_cores)

    def test_edge_hop_costs_all_one_for_exact(self):
        chip, _, vnpu = make()
        assert vnpu.mapping.is_exact
        hops = vnpu.edge_hop_cost(chip.topology)
        assert all(h == 1 for h in hops.values())

    def test_memory_bytes_covers_request(self):
        _, _, vnpu = make()
        assert vnpu.memory_bytes >= 64 * MB


class TestSessionApi:
    def test_deploy_roundtrip(self):
        chip, _, vnpu = make(3, 4)
        report = deploy(transformer_block(256, 32), vnpu, chip)
        assert report.fps > 0
        assert report.placed.vmid == vnpu.vmid

    def test_compile_model_uses_all_cores(self):
        chip, _, vnpu = make(3, 4)
        placed = compile_model(resnet(18), vnpu, chip)
        assert len(placed.cores) == 12

    def test_bare_metal_requires_connected_cores(self):
        chip = Chip(sim_config(36))
        with pytest.raises(CompilationError):
            compile_bare_metal(resnet(18), chip, cores=[0, 35])

    def test_bare_metal_defaults_to_whole_chip(self):
        chip = Chip(sim_config(36))
        placed = compile_bare_metal(transformer_block(512, 64), chip)
        assert placed.vmid is None
        assert len(placed.cores) == 36

    def test_estimate_together_returns_all_tasks(self):
        chip, hv, v1 = make(2, 2)
        v2 = hv.create_vnpu(VNpuSpec("u", MeshShape(2, 2), 64 * MB))
        a = compile_model(transformer_block(128, 16, name="blk-a"), v1, chip)
        b = compile_model(transformer_block(128, 16, name="blk-b"), v2, chip)
        reports = estimate_together(chip, [a, b])
        assert set(reports) == {"blk-a", "blk-b"}

    def test_warmup_reported(self):
        chip, _, vnpu = make(3, 4)
        report = deploy(resnet(18), vnpu, chip)
        assert report.warmup_cycles > 0


class TestChipHelpers:
    def test_seconds_and_fps(self):
        chip = Chip(sim_config(36))
        assert chip.seconds(chip.config.frequency_hz) == pytest.approx(1.0)
        assert chip.fps(chip.config.frequency_hz) == pytest.approx(1.0)
        with pytest.raises(ConfigError):
            chip.fps(0)

    def test_unknown_core_raises(self):
        chip = Chip(sim_config(36))
        with pytest.raises(ConfigError):
            chip.core(99)

    def test_memory_interfaces_spanned_floor_one(self):
        chip = Chip(sim_config(36))
        no_interface_cores = [1, 2]  # column 0 holds the interfaces
        assert chip.memory_interfaces_spanned(no_interface_cores) == 1

    def test_memory_interfaces_counted(self):
        chip = Chip(sim_config(36))
        interfaces = list(chip.config.memory_interface_cores[:3])
        assert chip.memory_interfaces_spanned(interfaces) == 3
