"""Unit and property tests for topology-mapping strategies (§4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.topology import Topology
from repro.core.topology_mapping import (
    TopologyMapper,
    enumerate_connected_subsets,
)
from repro.errors import AllocationError, TopologyError, TopologyLockIn


class TestEnumeration:
    def test_counts_on_small_mesh(self):
        mesh = Topology.mesh2d(2, 2)
        assert len(enumerate_connected_subsets(mesh, 1)) == 4
        assert len(enumerate_connected_subsets(mesh, 2)) == 4  # the edges
        assert len(enumerate_connected_subsets(mesh, 3)) == 4
        assert len(enumerate_connected_subsets(mesh, 4)) == 1

    def test_all_results_connected_and_unique(self):
        mesh = Topology.mesh2d(3, 3)
        subsets = enumerate_connected_subsets(mesh, 4)
        assert len(subsets) == len(set(subsets))
        for subset in subsets:
            assert mesh.is_connected(set(subset))

    def test_limit_respected(self):
        mesh = Topology.mesh2d(4, 4)
        assert len(enumerate_connected_subsets(mesh, 5, limit=10)) == 10

    def test_invalid_size(self):
        with pytest.raises(TopologyError):
            enumerate_connected_subsets(Topology.mesh2d(2, 2), 0)


class TestExactMapping:
    def test_paper_lock_in_scenario(self):
        """5x5 chip, two 3x3 requests: first fits, second hits lock-in."""
        mapper = TopologyMapper(Topology.mesh2d(5, 5))
        request = Topology.mesh2d(3, 3)
        first = mapper.map_exact(request)
        assert first.is_exact
        with pytest.raises(TopologyLockIn):
            mapper.map_exact(request, allocated=set(first.physical_cores))

    def test_exact_preserves_adjacency(self):
        mapper = TopologyMapper(Topology.mesh2d(4, 4))
        request = Topology.mesh2d(2, 3)
        result = mapper.map_exact(request)
        chip = mapper.chip
        for u, v in request.edges:
            assert chip.has_edge(result.vmap[u], result.vmap[v])

    def test_rotated_placement_found(self):
        # 2x5 chip cannot host 5x2 without rotation.
        mapper = TopologyMapper(Topology.mesh2d(2, 5))
        request = Topology.mesh2d(5, 2)
        result = mapper.map_exact(request)
        assert result.is_exact

    def test_capacity_error_before_lock_in(self):
        mapper = TopologyMapper(Topology.mesh2d(2, 2))
        with pytest.raises(AllocationError):
            mapper.map_exact(Topology.mesh2d(3, 3))

    def test_non_mesh_request_exact(self):
        mapper = TopologyMapper(Topology.mesh2d(3, 3))
        lshape = Topology([0, 1, 2], [(0, 1), (1, 2)])
        result = mapper.map_exact(lshape)
        assert result.is_exact


class TestSimilarMapping:
    def test_exact_match_short_circuits(self):
        mapper = TopologyMapper(Topology.mesh2d(4, 4))
        result = mapper.map_similar(Topology.mesh2d(2, 2))
        assert result.is_exact

    def test_paper_figure8_second_vnpu(self):
        """The second 3x3 vNPU on a 5x5 chip maps with small distance."""
        mapper = TopologyMapper(Topology.mesh2d(5, 5))
        request = Topology.mesh2d(3, 3)
        first = mapper.map_exact(request)
        second = mapper.map_similar(request,
                                    allocated=set(first.physical_cores))
        assert second.connected
        assert 0 < second.distance <= 8
        assert len(second.vmap) == 9
        # No overlap with the first vNPU.
        assert not set(second.physical_cores) & set(first.physical_cores)

    def test_requires_enough_cores(self):
        mapper = TopologyMapper(Topology.mesh2d(3, 3))
        with pytest.raises(AllocationError):
            mapper.map_similar(Topology.mesh2d(2, 2),
                               allocated=set(range(6)))

    def test_disconnected_free_set_falls_back(self):
        # Free cores split into two fragments of 2; request 3 connected.
        chip = Topology.mesh2d(1, 7)
        allocated = {2, 4}  # free: {0,1}, {3}, {5,6}
        mapper = TopologyMapper(chip)
        with pytest.raises(AllocationError):
            mapper.map_similar(Topology.line(3), allocated=allocated,
                               require_connected=True)
        result = mapper.map_similar(Topology.line(3), allocated=allocated,
                                    require_connected=False)
        assert result.strategy == "fragmented"
        assert not result.connected

    def test_large_request_uses_compact_candidates(self):
        mapper = TopologyMapper(Topology.mesh2d(6, 6))
        request = Topology.mesh2d(4, 7)  # 28 cores: beyond ESU threshold
        result = mapper.map_similar(request, allocated={0, 1, 6, 7})
        assert len(result.vmap) == 28
        assert result.connected


class TestStraightforwardMapping:
    def test_takes_lowest_zigzag_cores(self):
        mapper = TopologyMapper(Topology.mesh2d(3, 3))
        result = mapper.map_straightforward(Topology.mesh2d(2, 2))
        # zigzag over 3x3: 0,1,2,5,4,3,6,7,8 -> first 4: 0,1,2,5
        assert result.physical_cores == [0, 1, 2, 5]

    def test_distance_at_least_similar(self):
        """The similar strategy never does worse than zig-zag."""
        chip = Topology.mesh2d(5, 5)
        mapper = TopologyMapper(chip)
        allocated = {0, 6, 12, 18, 24}  # diagonal occupied
        request = Topology.mesh2d(3, 3)
        similar = mapper.map_similar(request, allocated=allocated)
        zigzag = mapper.map_straightforward(request, allocated=allocated)
        assert similar.distance <= zigzag.distance


class TestFragmentedMapping:
    def test_uses_fragments_when_needed(self):
        chip = Topology.mesh2d(1, 9)
        allocated = {3, 7}
        mapper = TopologyMapper(chip)
        result = mapper.map_fragmented(Topology.line(5), allocated=allocated)
        assert len(result.vmap) == 5
        assert not set(result.physical_cores) & allocated

    def test_prefers_largest_fragment(self):
        chip = Topology.mesh2d(1, 9)
        allocated = {2}  # fragments: {0,1} and {3..8}
        mapper = TopologyMapper(chip)
        result = mapper.map_fragmented(Topology.line(4), allocated=allocated)
        assert set(result.physical_cores) <= {3, 4, 5, 6, 7, 8}
        assert result.connected


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(2, 4), cols=st.integers(2, 4),
    req_rows=st.integers(1, 2), req_cols=st.integers(1, 3),
)
def test_property_mapping_requirements(rows, cols, req_rows, req_cols):
    """R-1 (node count), R-3 (connected) hold for every similar mapping."""
    chip = Topology.mesh2d(rows, cols)
    request = Topology.mesh2d(req_rows, req_cols)
    if request.node_count > chip.node_count:
        return
    mapper = TopologyMapper(chip)
    result = mapper.map_similar(request)
    assert len(result.vmap) == request.node_count          # R-1
    assert len(set(result.vmap.values())) == request.node_count
    assert chip.is_connected(set(result.vmap.values()))    # R-3
    assert result.distance >= 0                            # R-2 metric sane
