"""Unit and property tests for graph edit distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.topology import Topology
from repro.core.ged import (
    EditCosts,
    best_bijection,
    bijection_lower_bound,
    bipartite_ged,
    exact_ged,
    ged,
    induced_edit_cost,
    refine_bijection,
)
from repro.errors import TopologyError


def small_topology(seed: int, n: int) -> Topology:
    """Deterministic pseudo-random connected topology."""
    edges = [(i, i + 1) for i in range(n - 1)]  # spine keeps it connected
    state = seed
    for u in range(n):
        for v in range(u + 2, n):
            state = (state * 1103515245 + 12345) % (1 << 31)
            if state % 7 == 0:
                edges.append((u, v))
    return Topology(range(n), edges)


class TestInducedCost:
    def test_identity_mapping_is_free(self):
        mesh = Topology.mesh2d(2, 3)
        mapping = {n: n for n in mesh.nodes}
        assert induced_edit_cost(mesh, mesh, mapping) == 0.0

    def test_single_missing_edge(self):
        line = Topology.line(3)
        broken = Topology([0, 1, 2], [(0, 1)])
        mapping = {0: 0, 1: 1, 2: 2}
        assert induced_edit_cost(line, broken, mapping) == 1.0

    def test_deletion_and_insertion(self):
        single = Topology([0], [])
        pair = Topology([0, 1], [(0, 1)])
        # Map the one node, insert the other and its edge.
        assert induced_edit_cost(single, pair, {0: 0}) == 2.0
        # Delete the node instead: delete 1 + insert 2 + insert edge.
        assert induced_edit_cost(single, pair, {0: None}) == 4.0

    def test_attribute_substitution(self):
        sa = Topology([0], [], node_attrs={0: "sa"})
        vu = Topology([0], [], node_attrs={0: "vu"})
        assert induced_edit_cost(sa, vu, {0: 0}) == 1.0

    def test_untagged_source_is_dont_care(self):
        plain = Topology([0], [])
        tagged = Topology([0], [], node_attrs={0: "mem"})
        assert induced_edit_cost(plain, tagged, {0: 0}) == 0.0
        # The reverse direction still costs: a tagged request node needs
        # a matching physical core.
        assert induced_edit_cost(tagged, plain, {0: 0}) == 1.0

    def test_incomplete_mapping_rejected(self):
        mesh = Topology.mesh2d(2, 2)
        with pytest.raises(TopologyError):
            induced_edit_cost(mesh, mesh, {0: 0})

    def test_non_injective_mapping_rejected(self):
        pair = Topology([0, 1], [(0, 1)])
        with pytest.raises(TopologyError):
            induced_edit_cost(pair, pair, {0: 0, 1: 0})


class TestExact:
    def test_identical_graphs_zero(self):
        mesh = Topology.mesh2d(2, 3)
        assert exact_ged(mesh, mesh) == 0.0

    def test_isomorphic_graphs_zero(self):
        a = Topology.mesh2d(2, 3)
        b = a.relabel({n: 5 - n for n in a.nodes})
        assert exact_ged(a, b) == 0.0

    def test_line_vs_ring_is_one_edge(self):
        assert exact_ged(Topology.line(5), Topology.ring(5)) == 1.0

    def test_fig9_style_example_distance_four(self):
        """Two edge deletions + one edge insertion + one node substitution."""
        t1 = Topology(
            range(5), [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)],
            node_attrs={4: "sa"},
        )
        t2 = Topology(
            range(5), [(0, 1), (0, 2), (0, 3), (0, 4)],  # star
            node_attrs={4: "vu"},
        )
        assert exact_ged(t1, t2) == 4.0

    def test_size_limit_enforced(self):
        big = Topology.mesh2d(4, 4)
        with pytest.raises(TopologyError):
            exact_ged(big, big, max_nodes=8)

    def test_symmetry_with_unit_costs(self):
        a = small_topology(1, 5)
        b = small_topology(2, 5)
        assert exact_ged(a, b) == exact_ged(b, a)


class TestBipartite:
    def test_upper_bounds_exact(self):
        for seed in range(6):
            a = small_topology(seed, 5)
            b = small_topology(seed + 100, 5)
            assert bipartite_ged(a, b) >= exact_ged(a, b) - 1e-9

    def test_zero_on_identical(self):
        mesh = Topology.mesh2d(3, 3)
        assert bipartite_ged(mesh, mesh) == 0.0

    def test_different_sizes(self):
        small = Topology.mesh2d(2, 2)
        large = Topology.mesh2d(3, 3)
        distance = bipartite_ged(small, large)
        # At least 5 node insertions + some edges.
        assert distance >= 5.0


class TestDispatch:
    def test_auto_uses_exact_for_small(self):
        line, ring = Topology.line(5), Topology.ring(5)
        assert ged(line, ring, method="auto") == 1.0

    def test_auto_uses_bipartite_for_large(self):
        a = Topology.mesh2d(4, 4)
        assert ged(a, a, method="auto") == 0.0

    def test_unknown_method(self):
        mesh = Topology.mesh2d(2, 2)
        with pytest.raises(TopologyError):
            ged(mesh, mesh, method="nope")


class TestBijection:
    def test_equal_size_required(self):
        with pytest.raises(TopologyError):
            best_bijection(Topology.line(3), Topology.line(4))

    def test_identity_found_for_identical(self):
        mesh = Topology.mesh2d(2, 3)
        cost, mapping = best_bijection(mesh, mesh)
        assert cost == 0.0
        assert induced_edit_cost(mesh, mesh, dict(mapping)) == 0.0

    def test_refinement_never_worsens(self):
        for seed in range(5):
            a = small_topology(seed, 7)
            b = small_topology(seed + 50, 7)
            cost, mapping = best_bijection(a, b)
            refined_cost, refined = refine_bijection(a, b, mapping)
            assert refined_cost <= cost + 1e-9
            assert induced_edit_cost(a, b, dict(refined)) == refined_cost


class TestCustomCosts:
    def test_critical_edge_penalty(self):
        """Algorithm 1's EdgeMatch: losing a critical edge costs more."""
        line = Topology.line(3)
        broken = Topology([0, 1, 2], [(1, 2)])  # edge (0,1) missing

        def critical(topology, u, v):
            return 10.0 if (u, v) == (0, 1) else 1.0

        costs = EditCosts(edge_delete=critical)
        mapping = {0: 0, 1: 1, 2: 2}
        assert induced_edit_cost(line, broken, mapping, costs) == 10.0

    def test_heterogeneous_node_penalty(self):
        """Algorithm 1's NodeMatch: mem-adjacent nodes priced by distance."""
        req = Topology([0, 1], [(0, 1)], node_attrs={0: "mem"})
        far = Topology([0, 1], [(0, 1)], node_attrs={1: "mem"})

        def node_cost(a, b):
            return 0.0 if a == b else 3.0

        costs = EditCosts(node_substitute=node_cost)
        # The optimal bijection aligns mem with mem (cost 0).
        cost, mapping = best_bijection(req, far, costs)
        assert cost == 0.0
        assert mapping[0] == 1


@settings(max_examples=60, deadline=None)
@given(
    seed1=st.integers(0, 1000), seed2=st.integers(0, 1000),
    n=st.integers(3, 5),
)
def test_property_exact_ged_is_symmetric_and_nonnegative(seed1, seed2, n):
    a = small_topology(seed1, n)
    b = small_topology(seed2, n)
    d_ab = exact_ged(a, b)
    d_ba = exact_ged(b, a)
    assert d_ab >= 0
    assert d_ab == d_ba
    if seed1 == seed2:
        assert d_ab == 0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(3, 6))
def test_property_bipartite_upper_bounds_exact(seed, n):
    a = small_topology(seed, n)
    b = small_topology(seed + 7, n)
    assert bipartite_ged(a, b) >= exact_ged(a, b) - 1e-9


def tagged_topology(seed: int, n: int) -> Topology:
    """Like :func:`small_topology` but with a pseudo-random tag mix."""
    base = small_topology(seed, n)
    tags = ("", "mem", "sa", "vu")
    attrs = {node: tags[(seed + node * 3) % len(tags)]
             for node in base.nodes}
    attrs = {node: tag for node, tag in attrs.items() if tag}
    return Topology(base.nodes, base.edges, node_attrs=attrs)


class TestVectorizedIdentity:
    """The numpy reward-matrix block must be *bit-identical* to the
    scalar reference loop — ``vectorize=False`` is the property-tested
    oracle the fast path is judged against."""

    @settings(max_examples=60, deadline=None)
    @given(seed1=st.integers(0, 1000), seed2=st.integers(0, 1000),
           n=st.integers(1, 9))
    def test_best_bijection_matches_scalar_oracle(self, seed1, seed2, n):
        a = tagged_topology(seed1, n)
        b = tagged_topology(seed2, n)
        fast_cost, fast_map = best_bijection(a, b, vectorize=True)
        slow_cost, slow_map = best_bijection(a, b, vectorize=False)
        assert fast_cost == slow_cost  # exact float equality, no epsilon
        assert fast_map == slow_map

    @settings(max_examples=60, deadline=None)
    @given(seed1=st.integers(0, 1000), seed2=st.integers(0, 1000),
           n1=st.integers(1, 8), n2=st.integers(1, 8))
    def test_bipartite_ged_matches_scalar_oracle(self, seed1, seed2, n1, n2):
        a = tagged_topology(seed1, n1)
        b = tagged_topology(seed2, n2)
        assert (bipartite_ged(a, b, vectorize=True)
                == bipartite_ged(a, b, vectorize=False))

    @settings(max_examples=60, deadline=None)
    @given(seed1=st.integers(0, 1000), seed2=st.integers(0, 1000),
           n=st.integers(1, 9))
    def test_lower_bound_matches_scalar_oracle(self, seed1, seed2, n):
        a = tagged_topology(seed1, n)
        b = tagged_topology(seed2, n)
        fast = bijection_lower_bound(a, b, vectorize=True)
        slow = bijection_lower_bound(a, b, vectorize=False)
        assert fast == slow
        # Admissibility must survive vectorization.
        exact_cost, _ = best_bijection(a, b)
        assert fast <= exact_cost + 1e-9

    def test_custom_costs_fall_back_to_scalar_loop(self):
        # A custom callable cannot be broadcast; vectorize=True must
        # silently take the reference loop, not crash or drift.
        a = small_topology(3, 6)
        b = small_topology(11, 6)

        def pricey(topology, u, v):
            return 2.5

        costs = EditCosts(edge_delete=pricey)
        assert (best_bijection(a, b, costs, vectorize=True)
                == best_bijection(a, b, costs, vectorize=False))
        assert (bipartite_ged(a, b, costs, vectorize=True)
                == bipartite_ged(a, b, costs, vectorize=False))
        assert (bijection_lower_bound(a, b, costs, vectorize=True)
                == bijection_lower_bound(a, b, costs, vectorize=False))

    def test_empty_topology(self):
        empty = Topology([], [])
        assert bipartite_ged(empty, empty, vectorize=True) == 0.0
        assert bijection_lower_bound(empty, empty, vectorize=True) == 0.0
