"""Unit tests for Topology: meshes, DOR routing, shapes, certificates."""

import pytest

from repro.arch.topology import MeshShape, Topology
from repro.errors import TopologyError


class TestConstruction:
    def test_mesh_node_and_edge_counts(self):
        mesh = Topology.mesh2d(3, 4)
        assert mesh.node_count == 12
        # 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8
        assert mesh.edge_count == 3 * 3 + 4 * 2

    def test_mesh_coordinates_are_row_major(self):
        mesh = Topology.mesh2d(2, 3)
        assert mesh.coords[0] == (0, 0)
        assert mesh.coords[5] == (1, 2)

    def test_line_is_1xn_mesh(self):
        line = Topology.line(5)
        assert line.node_count == 5
        assert line.edge_count == 4
        assert line.degree_sequence() == (1, 1, 2, 2, 2)

    def test_ring(self):
        ring = Topology.ring(6)
        assert ring.edge_count == 6
        assert all(ring.degree(n) == 2 for n in ring.nodes)

    def test_ring_too_small_rejected(self):
        with pytest.raises(TopologyError):
            Topology.ring(2)

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 9)])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 0)])

    def test_partial_coords_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 1)], coords={0: (0, 0)})

    def test_invalid_mesh_shape(self):
        with pytest.raises(TopologyError):
            MeshShape(0, 3)


class TestQueries:
    def test_neighbors_of_mesh_corner_and_center(self):
        mesh = Topology.mesh2d(3, 3)
        assert mesh.neighbors(0) == [1, 3]
        assert mesh.neighbors(4) == [1, 3, 5, 7]

    def test_neighbors_unknown_node(self):
        mesh = Topology.mesh2d(2, 2)
        with pytest.raises(TopologyError):
            mesh.neighbors(99)

    def test_hop_distance_manhattan_on_mesh(self):
        mesh = Topology.mesh2d(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(5, 5) == 0
        assert mesh.hop_distance(0, 1) == 1

    def test_hop_distance_unreachable(self):
        topo = Topology([0, 1, 2], [(0, 1)])
        with pytest.raises(TopologyError):
            topo.hop_distance(0, 2)

    def test_is_connected_whole_and_subset(self):
        mesh = Topology.mesh2d(3, 3)
        assert mesh.is_connected()
        assert mesh.is_connected({0, 1, 2})
        assert not mesh.is_connected({0, 8})  # two opposite corners

    def test_empty_subset_is_connected(self):
        assert Topology.mesh2d(2, 2).is_connected(set())

    def test_bfs_order_starts_at_seed_and_covers_component(self):
        mesh = Topology.mesh2d(2, 3)
        order = mesh.bfs_order(0)
        assert order[0] == 0
        assert sorted(order) == mesh.nodes


class TestSubtopology:
    def test_induced_edges_only(self):
        mesh = Topology.mesh2d(3, 3)
        sub = mesh.subtopology({0, 1, 3, 4})
        assert sub.node_count == 4
        assert sub.edge_count == 4  # the 2x2 corner block

    def test_subtopology_preserves_coords(self):
        mesh = Topology.mesh2d(3, 3)
        sub = mesh.subtopology({4, 5})
        assert sub.coords[4] == (1, 1)

    def test_subtopology_unknown_node(self):
        with pytest.raises(TopologyError):
            Topology.mesh2d(2, 2).subtopology({0, 77})


class TestDorRouting:
    def test_x_then_y(self):
        mesh = Topology.mesh2d(3, 3)
        # 0 at (0,0) -> 8 at (2,2): columns first, then rows.
        assert mesh.dor_path(0, 8) == [0, 1, 2, 5, 8]

    def test_same_node_path(self):
        mesh = Topology.mesh2d(3, 3)
        assert mesh.dor_path(4, 4) == [4]

    def test_negative_direction(self):
        mesh = Topology.mesh2d(3, 3)
        assert mesh.dor_path(8, 0) == [8, 7, 6, 3, 0]

    def test_path_length_is_manhattan(self):
        mesh = Topology.mesh2d(5, 5)
        for src, dst in [(0, 24), (3, 21), (7, 17)]:
            path = mesh.dor_path(src, dst)
            assert len(path) - 1 == mesh.hop_distance(src, dst)

    def test_requires_coords(self):
        ring = Topology.ring(4)
        with pytest.raises(TopologyError):
            ring.dor_path(0, 2)

    def test_dor_through_missing_node_raises(self):
        # L-shaped fragment: going 0 -> 5 needs coordinate (0,1) or (1,0)...
        mesh = Topology.mesh2d(2, 3)
        frag = mesh.subtopology({0, 3, 4, 5})
        # DOR from 0 to 5 moves along row 0 first: (0,1) == node 1, missing.
        with pytest.raises(TopologyError):
            frag.dor_path(0, 5)


class TestShapesAndIsomorphism:
    def test_mesh_shape_detected(self):
        assert Topology.mesh2d(3, 4).mesh_shape() == MeshShape(3, 4)

    def test_mesh_shape_of_submesh_block(self):
        mesh = Topology.mesh2d(5, 5)
        block = mesh.subtopology({6, 7, 8, 11, 12, 13, 16, 17, 18})
        assert block.mesh_shape() == MeshShape(3, 3)

    def test_non_mesh_has_no_shape(self):
        assert Topology.ring(6).mesh_shape() is None
        mesh = Topology.mesh2d(3, 3)
        lshape = mesh.subtopology({0, 1, 3})
        assert lshape.mesh_shape() is None

    def test_structural_mesh_detection_without_coords(self):
        mesh = Topology.mesh2d(2, 3)
        stripped = Topology(mesh.nodes, mesh.edges)  # drop coords
        assert stripped.mesh_shape() in (MeshShape(2, 3), MeshShape(3, 2))

    def test_isomorphic_meshes(self):
        a = Topology.mesh2d(2, 3)
        b = Topology.mesh2d(3, 2)
        assert a.is_isomorphic_to(b)

    def test_non_isomorphic_same_size(self):
        line = Topology.line(4)
        star = Topology([0, 1, 2, 3], [(0, 1), (0, 2), (0, 3)])
        assert not line.is_isomorphic_to(star)

    def test_certificate_matches_for_isomorphic_graphs(self):
        a = Topology.mesh2d(2, 3)
        relabeled = a.relabel({n: n + 100 for n in a.nodes})
        assert a.wl_certificate() == relabeled.wl_certificate()

    def test_certificate_differs_for_different_structure(self):
        assert Topology.line(4).wl_certificate() != Topology.ring(4).wl_certificate()

    def test_attr_aware_isomorphism(self):
        a = Topology([0, 1], [(0, 1)], node_attrs={0: "mem"})
        b = Topology([0, 1], [(0, 1)], node_attrs={1: "mem"})
        c = Topology([0, 1], [(0, 1)])
        assert a.is_isomorphic_to(b)
        assert not a.is_isomorphic_to(c)

    def test_relabel_requires_total_mapping(self):
        mesh = Topology.mesh2d(2, 2)
        with pytest.raises(TopologyError):
            mesh.relabel({0: 10})
