"""Unit tests for standard and shaped routing tables (Fig 4)."""

import pytest

from repro.arch.topology import MeshShape
from repro.core.routing_table import (
    SHAPED_ENTRY_BITS,
    STANDARD_ENTRY_BITS,
    ShapedRoutingTable,
    StandardRoutingTable,
)
from repro.errors import IsolationViolation, RoutingError


class TestStandard:
    def test_translate(self):
        table = StandardRoutingTable(1, {0: 0, 1: 1, 2: 3, 3: 4})
        assert table.translate(2) == 3

    def test_figure4_vm1_example(self):
        """Fig 4: VM1 maps v1..v4 -> p1, p2, p4, p5 (0-based here)."""
        table = StandardRoutingTable(1, {0: 0, 1: 1, 2: 3, 3: 4})
        assert table.physical_cores() == [0, 1, 3, 4]
        assert table.entry_count == 4

    def test_unmapped_core_is_isolation_violation(self):
        table = StandardRoutingTable(1, {0: 5})
        with pytest.raises(IsolationViolation):
            table.translate(1)

    def test_duplicate_physical_rejected(self):
        with pytest.raises(RoutingError):
            StandardRoutingTable(1, {0: 5, 1: 5})

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            StandardRoutingTable(1, {})

    def test_negative_vmid_rejected(self):
        with pytest.raises(RoutingError):
            StandardRoutingTable(-1, {0: 0})

    def test_directions(self):
        table = StandardRoutingTable(
            1, {0: 0, 1: 1, 2: 4, 3: 5},
            directions={0: "left", 3: "down"},
        )
        assert table.direction(0) == "left"
        assert table.direction(1) == ""

    def test_direction_for_unmapped_core_rejected(self):
        with pytest.raises(RoutingError):
            StandardRoutingTable(1, {0: 0}, directions={5: "left"})

    def test_reverse(self):
        table = StandardRoutingTable(1, {0: 7, 1: 8})
        assert table.reverse(8) == 1
        with pytest.raises(IsolationViolation):
            table.reverse(9)

    def test_sram_bits(self):
        table = StandardRoutingTable(1, {0: 0, 1: 1})
        assert table.sram_bits == 2 * STANDARD_ENTRY_BITS


class TestShaped:
    def test_figure4_vm2_example(self):
        """Fig 4: VM2's 2x2 block described by one shaped entry."""
        # 3x3 chip, block based at physical core 4 (center-bottom 2x2).
        table = ShapedRoutingTable(2, MeshShape(2, 2), p_base=4, chip_cols=3)
        assert table.entry_count == 1
        assert table.translate(0) == 4
        assert table.translate(1) == 5
        assert table.translate(2) == 7
        assert table.translate(3) == 8

    def test_out_of_block_is_isolation_violation(self):
        table = ShapedRoutingTable(2, MeshShape(2, 2), p_base=0, chip_cols=4)
        with pytest.raises(IsolationViolation):
            table.translate(4)

    def test_v_base_offset(self):
        table = ShapedRoutingTable(2, MeshShape(1, 2), p_base=0, chip_cols=4,
                                   v_base=10)
        assert table.translate(10) == 0
        assert table.translate(11) == 1
        with pytest.raises(IsolationViolation):
            table.translate(0)

    def test_block_cannot_wrap_mesh_row(self):
        with pytest.raises(RoutingError):
            ShapedRoutingTable(2, MeshShape(2, 3), p_base=2, chip_cols=4)

    def test_block_wider_than_chip_rejected(self):
        with pytest.raises(RoutingError):
            ShapedRoutingTable(2, MeshShape(1, 5), p_base=0, chip_cols=4)

    def test_sram_savings_vs_standard(self):
        """The Fig 4 point: shaped form is O(1) entries, not O(cores)."""
        shaped = ShapedRoutingTable(2, MeshShape(4, 4), p_base=0, chip_cols=6)
        standard = StandardRoutingTable(
            3, {v: p for v, p in enumerate(shaped.physical_cores())})
        assert shaped.sram_bits == SHAPED_ENTRY_BITS
        assert standard.sram_bits == 16 * STANDARD_ENTRY_BITS
        assert shaped.sram_bits < standard.sram_bits / 10

    def test_shaped_and_standard_agree(self):
        shaped = ShapedRoutingTable(2, MeshShape(2, 3), p_base=6, chip_cols=6)
        mapping = {v: shaped.translate(v) for v in shaped.virtual_cores()}
        standard = StandardRoutingTable(2, mapping)
        for v_core in shaped.virtual_cores():
            assert shaped.translate(v_core) == standard.translate(v_core)
