"""Unit tests for the event-driven executor."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, fpga_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import GUEST_VA_BASE, Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import ProgramError
from repro.isa.program import TaskProgram
from repro.runtime.executor import Executor


def make_chip():
    return Chip(fpga_config())


def make_vnpu(chip, rows=2, cols=2, **kwargs):
    hv = Hypervisor(chip, min_block=1 << 16)
    return hv.create_vnpu(
        VNpuSpec("t", MeshShape(rows, cols), memory_bytes=1 * MB, **kwargs))


class TestBareMetal:
    def test_compute_only(self):
        chip = make_chip()
        program = TaskProgram("compute")
        program.core(0).matmul(64, 64, 64)
        report = Executor(chip).run(program)
        expected = chip.core(0).compute.matmul(64, 64, 64).cycles
        assert report.total_cycles == expected

    def test_pipeline_overlaps_iterations(self):
        chip = make_chip()
        program = TaskProgram("pipe")
        program.core(0).matmul(64, 64, 64).send(1, 2048, "x")
        program.core(1).receive(0, "x").matmul(64, 64, 64)
        two = Executor(make_chip()).run(_clone(program), iterations=2)
        one = Executor(chip).run(program, iterations=1)
        # Second iteration costs less than double (stages overlap).
        assert two.total_cycles < 2 * one.total_cycles

    def test_send_receive_cycle_counts(self):
        chip = make_chip()
        program = TaskProgram("sr")
        program.core(0).send(1, 2048, "x")
        program.core(1).receive(0, "x")
        report = Executor(chip).run(program)
        # One packet, one hop: setup + occupancy + router.
        cfg = chip.noc.config
        expected = (cfg.transfer_setup + cfg.packet_serialization()
                    + cfg.packet_handshake + cfg.router_latency)
        assert report.total_cycles == expected

    def test_program_outside_chip_rejected(self):
        chip = make_chip()
        program = TaskProgram("bad")
        program.core(99).macs(10)
        with pytest.raises(ProgramError):
            Executor(chip).run(program)

    def test_invalid_iterations(self):
        chip = make_chip()
        program = TaskProgram("x")
        program.core(0).macs(10)
        with pytest.raises(ProgramError):
            Executor(chip).run(program, iterations=0)


def _clone(program: TaskProgram) -> TaskProgram:
    copy = TaskProgram(program.name)
    for core_program in program.programs():
        target = copy.core(core_program.core)
        for instruction in core_program.instructions:
            target.append(instruction)
    return copy


class TestVirtualized:
    def test_vnpu_program_uses_virtual_ids(self):
        chip = make_chip()
        vnpu = make_vnpu(chip)
        v_cores = vnpu.virtual_cores
        program = TaskProgram("virt")
        program.core(v_cores[0]).macs(1000).send(v_cores[1], 2048, "a")
        program.core(v_cores[1]).receive(v_cores[0], "a").macs(1000)
        report = Executor(chip).run(program, vnpu=vnpu)
        p0 = vnpu.physical_core(v_cores[0])
        p1 = vnpu.physical_core(v_cores[1])
        assert set(report.core_finish_cycles) == {p0, p1}

    def test_program_outside_vnpu_rejected(self):
        chip = make_chip()
        vnpu = make_vnpu(chip)
        program = TaskProgram("stray")
        program.core(max(vnpu.virtual_cores) + 5).macs(10)
        with pytest.raises(ProgramError):
            Executor(chip).run(program, vnpu=vnpu)

    def test_vrouter_adds_bounded_overhead(self):
        """Table 3's claim at executor level: a few percent on transfers."""
        def transfer_program():
            program = TaskProgram("sr")
            program.core(0).send(1, 2048 * 30, "x")
            program.core(1).receive(0, "x")
            return program

        bare_chip = make_chip()
        bare = Executor(bare_chip).run(transfer_program())
        virt_chip = make_chip()
        vnpu = make_vnpu(virt_chip)
        program = TaskProgram("sr")
        v = vnpu.virtual_cores
        program.core(v[0]).send(v[1], 2048 * 30, "x")
        program.core(v[1]).receive(v[0], "x")
        virt = Executor(virt_chip).run(program, vnpu=vnpu)
        overhead = virt.total_cycles - bare.total_cycles
        assert 0 < overhead / bare.total_cycles < 0.05

    def test_dma_load_through_vchunk(self):
        chip = make_chip()
        vnpu = make_vnpu(chip)
        program = TaskProgram("dma")
        program.core(vnpu.virtual_cores[0]).dma_load(GUEST_VA_BASE, 64 * 1024)
        report = Executor(chip).run(program, vnpu=vnpu)
        assert report.total_cycles > 0
        assert vnpu.translator.lookups > 0

    def test_confined_routing_no_foreign_traversals(self):
        chip = make_chip()
        vnpu = make_vnpu(chip)
        v = vnpu.virtual_cores
        program = TaskProgram("iso")
        program.core(v[0]).send(v[3], 4096, "d")
        program.core(v[3]).receive(v[0], "d")
        report = Executor(chip).run(program, vnpu=vnpu)
        assert report.foreign_traversals == 0

    def test_bandwidth_capped_vnpu_is_slower(self):
        fast_chip = make_chip()
        fast_vnpu = make_vnpu(fast_chip)
        slow_chip = make_chip()
        hv = Hypervisor(slow_chip, min_block=1 << 16)
        slow_vnpu = hv.create_vnpu(VNpuSpec(
            "slow", MeshShape(2, 2), memory_bytes=1 * MB,
            memory_cap_bytes_per_window=4096,
            memory_cap_window_cycles=10_000,
        ))

        def dma_program(vnpu):
            program = TaskProgram("dma")
            program.core(vnpu.virtual_cores[0]).dma_load(
                GUEST_VA_BASE, 256 * 1024)
            return program

        fast = Executor(fast_chip).run(dma_program(fast_vnpu), vnpu=fast_vnpu)
        slow = Executor(slow_chip).run(dma_program(slow_vnpu), vnpu=slow_vnpu)
        assert slow.total_cycles > 2 * fast.total_cycles
