"""Unit tests for SLO classes, elastic policies and elastic scheduling."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.core.hypervisor import Hypervisor
from repro.errors import ServingError
from repro.serving import (
    BEST_EFFORT,
    DEFAULT_SLO_MIX,
    GOLD,
    SILVER,
    ClusterScheduler,
    FleetScheduler,
    PendingSession,
    SLOClass,
    SLOMetrics,
    TenantSession,
    available_elastics,
    available_slos,
    coerce_elastic,
    effective_priority,
    generate_fleet_trace,
    generate_trace,
    register_slo,
    resolve_elastic,
    resolve_slo,
    session_slo,
    shrink_shape,
    unregister_slo,
)
from repro.serving.metrics import SessionRecord
from repro.serving.policies import PriorityPolicy
from repro.serving.slo import ElasticVictim


def session(session_id=0, arrival=0, rows=2, cols=2, priority=0,
            model="alexnet", inferences=10, slo=""):
    return TenantSession(
        session_id=session_id, tenant=f"t{session_id}",
        arrival_cycle=arrival, rows=rows, cols=cols,
        memory_bytes=rows * cols * 8 * MB, model=model,
        inferences=inferences, priority=priority, slo=slo,
    )


def victim(tier=0, cores=4, freeable=2, preemptible=True, order=(0, 0),
           key=None):
    return ElasticVictim(key=key, tier=tier, cores=cores,
                         freeable_by_shrink=freeable,
                         preemptible=preemptible, order=order)


class TestSLOClasses:
    def test_builtins_registered(self):
        assert {"gold", "silver", "best_effort"} <= set(available_slos())

    def test_unknown_class_raises(self):
        with pytest.raises(ServingError):
            resolve_slo("platinum")

    def test_register_and_unregister(self):
        bronze = SLOClass("bronze-test", tier=0,
                          queue_delay_target_cycles=10)
        register_slo(bronze)
        try:
            assert resolve_slo("bronze-test") is bronze
        finally:
            unregister_slo("bronze-test")

    def test_met_without_target_always_true(self):
        assert BEST_EFFORT.met(10**12)

    def test_met_with_target(self):
        assert GOLD.met(GOLD.queue_delay_target_cycles)
        assert not GOLD.met(GOLD.queue_delay_target_cycles + 1)

    def test_relief_due_semantics(self):
        # Tier 0 never squeezes anyone.
        assert not BEST_EFFORT.relief_due(10**12)
        # Gold fires the moment it is blocked.
        assert GOLD.relief_due(0)
        # Silver fires only past its target (pressure, not privilege).
        assert not SILVER.relief_due(SILVER.queue_delay_target_cycles - 1)
        assert SILVER.relief_due(SILVER.queue_delay_target_cycles)

    def test_session_slo_explicit_beats_priority(self):
        assert session_slo(session(slo="gold")) is GOLD
        assert session_slo(session(priority=2)) is GOLD
        assert session_slo(session(priority=0)) is BEST_EFFORT
        assert session_slo(session(priority=99)) is GOLD  # clamped

    def test_effective_priority_backward_compatible(self):
        # Legacy sessions keep their raw priority, even outside 0..2.
        assert effective_priority(session(priority=7)) == 7
        assert effective_priority(session(slo="gold", priority=0)) == 2


class TestShrinkShape:
    @pytest.mark.parametrize("rows,cols,expected", [
        (3, 3, (2, 3)),
        (2, 2, (1, 2)),
        (4, 4, (2, 4)),
        (1, 2, (1, 1)),
        (2, 3, (2, 2)),
        (1, 6, (1, 3)),
    ])
    def test_halves_longer_dimension(self, rows, cols, expected):
        shape = shrink_shape(rows, cols)
        assert (shape.rows, shape.cols) == expected

    def test_floor_is_one_core(self):
        assert shrink_shape(1, 1) is None


class TestElasticPolicies:
    def test_builtins_registered(self):
        assert {"shrink", "preempt", "shrink_then_preempt"} <= set(
            available_elastics())

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ServingError):
            coerce_elastic(42)
        with pytest.raises(ServingError, match="unknown"):
            coerce_elastic("evict-everyone")
        assert coerce_elastic(None) is None
        assert coerce_elastic("shrink").name == "shrink"

    def test_shrink_plan_covers_or_declines(self):
        policy = resolve_elastic("shrink")
        victims = [victim(freeable=2, order=(0, 0)),
                   victim(freeable=3, order=(0, 1))]
        plan = policy.plan(4, victims)
        assert [a.kind for a in plan] == ["shrink", "shrink"]
        assert plan[0].victim.freeable_by_shrink == 3  # biggest first
        assert policy.plan(6, victims) == []  # cannot cover -> decline

    def test_preempt_plan_lowest_tier_biggest_first(self):
        policy = resolve_elastic("preempt")
        victims = [victim(tier=1, cores=9, order=(0, 0)),
                   victim(tier=0, cores=4, order=(0, 1)),
                   victim(tier=0, cores=6, order=(0, 2))]
        plan = policy.plan(8, victims)
        assert [(a.victim.tier, a.victim.cores) for a in plan] == [
            (0, 6), (0, 4)]

    def test_preempt_plan_skips_non_preemptible(self):
        policy = resolve_elastic("preempt")
        assert policy.plan(2, [victim(preemptible=False)]) == []

    def test_escalation_replaces_shrink_with_preempt(self):
        """A near-chip-sized need escalates: the shrink of a victim is
        dropped when that same victim ends up preempted."""
        policy = resolve_elastic("shrink_then_preempt")
        big = victim(cores=12, freeable=6, order=(0, 0))
        small = victim(cores=2, freeable=1, order=(0, 1))
        plan = policy.plan(14, [big, small])
        kinds = {(a.kind, id(a.victim)) for a in plan}
        assert ("preempt", id(big)) in kinds
        assert ("shrink", id(big)) not in kinds
        freed = sum(a.victim.cores if a.kind == "preempt"
                    else a.victim.freeable_by_shrink for a in plan)
        assert freed >= 14

    def test_escalation_prefers_shrink_when_sufficient(self):
        policy = resolve_elastic("shrink_then_preempt")
        plan = policy.plan(2, [victim(cores=4, freeable=2)])
        assert [a.kind for a in plan] == ["shrink"]


class TestPriorityStarvation:
    def test_high_priority_waiter_blocks_overtaking(self):
        """The satellite fix: a large high-priority request must not be
        starved by a stream of small low-priority arrivals."""
        big_gold = PendingSession(session(0, arrival=0, rows=3, cols=3,
                                          priority=2))
        small_low = PendingSession(session(1, arrival=5, priority=0))
        policy = PriorityPolicy()
        # 4 free cores: the 9-core gold cannot go, and priority now
        # holds the line — nobody overtakes.
        assert policy.select([small_low, big_gold], free_cores=4) is None
        # Once the chip drains, the gold waiter goes first.
        assert policy.select([small_low, big_gold],
                             free_cores=9) is big_gold

    def test_blocked_high_priority_is_skipped(self):
        """A placement-failed (blocked) waiter must not deadlock the
        queue — mirrors FCFS's blocked-head behavior."""
        blocked_gold = PendingSession(session(0, priority=2), blocked=True)
        small_low = PendingSession(session(1, arrival=5, priority=0))
        assert PriorityPolicy().select([blocked_gold, small_low],
                                       free_cores=8) is small_low

    def test_starvation_case_end_to_end(self):
        """Under the old fits-only policy the 16-core gold tenant admits
        last; with line-holding it admits as soon as the chip drains."""
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, Hypervisor(chip),
                                     policy="priority")
        trace = [session(0, arrival=1, rows=4, cols=4, priority=2,
                         inferences=5)]
        trace += [session(i, arrival=2 + i, rows=1, cols=2, priority=0,
                          inferences=200) for i in range(1, 6)]
        metrics = scheduler.serve(trace)
        gold_record = next(r for r in metrics.records if r.session_id == 0)
        others_admit = [r.admit_cycle for r in metrics.records
                        if r.session_id != 0]
        assert gold_record.admit_cycle <= min(others_admit)


class TestSLOMetrics:
    def record(self, slo, delay, **kwargs):
        return SessionRecord(
            session_id=0, tenant="t", model="alexnet", cores=4,
            arrival_cycle=0, admit_cycle=delay, depart_cycle=delay + 10,
            strategy="similar", mapping_distance=0.0,
            mapping_connected=True, slo=slo, **kwargs)

    def test_per_class_attainment_and_goodput(self):
        records = [
            self.record("gold", 0),
            self.record("gold", GOLD.queue_delay_target_cycles + 1),
            self.record("best_effort", 10**10, preemptions=2),
        ]
        digest = SLOMetrics.from_records(records, seconds=2.0).digest()
        assert digest["gold"]["attainment"] == 0.5
        assert digest["gold"]["sessions_met_slo"] == 1
        assert digest["gold"]["goodput_sessions_per_second"] == 0.5
        assert digest["best_effort"]["attainment"] == 1.0
        assert digest["best_effort"]["preemptions"] == 2

    def test_pre_slo_records_are_excluded(self):
        records = [self.record("", 0)]
        assert SLOMetrics.from_records(records, 1.0).digest() == {}

    def test_summary_threads_slo_block(self):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, Hypervisor(chip))
        metrics = scheduler.serve(generate_trace(5, 10, max_cores=16))
        slo = metrics.summary(500_000_000)["slo"]
        assert set(slo) == {"classes", "grows", "preemptions",
                            "resize_cycles", "shrinks"}
        # Pre-SLO traces derive classes from priority, so they report.
        assert sum(c["sessions_completed"]
                   for c in slo["classes"].values()) == 10


def elastic_cluster(policy="priority", elastic="shrink_then_preempt"):
    chip = Chip(sim_config(16))
    hypervisor = Hypervisor(chip)
    scheduler = ClusterScheduler(chip, hypervisor, policy=policy,
                                 elastic=elastic)
    return scheduler, hypervisor


class TestElasticScheduling:
    def test_bad_elastic_name_fails_at_construction(self):
        chip = Chip(sim_config(16))
        with pytest.raises(ServingError):
            ClusterScheduler(chip, elastic="evict-everyone")

    def test_gold_preempts_best_effort_tenant(self):
        """A blocked gold arrival evicts a resident best-effort tenant
        immediately (the preemptive-admission path)."""
        scheduler, hypervisor = elastic_cluster()
        trace = [
            session(0, arrival=1, rows=4, cols=4, priority=0,
                    inferences=500),
            session(1, arrival=100, rows=4, cols=4, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)
        gold_record = next(r for r in metrics.records if r.session_id == 1)
        victim_record = next(r for r in metrics.records
                             if r.session_id == 0)
        assert metrics.preemptions == 1
        assert gold_record.queue_delay_cycles < 2_000_000
        assert victim_record.preemptions == 1
        # The victim still completes (requeued, re-served afterwards).
        assert victim_record.depart_cycle > gold_record.depart_cycle

    def test_gold_shrinks_best_effort_tenant(self):
        """When partial room exists, shrinking (not eviction) frees it."""
        scheduler, hypervisor = elastic_cluster(elastic="shrink")
        trace = [
            session(0, arrival=1, rows=2, cols=4, priority=0,
                    inferences=400),
            session(1, arrival=100, rows=3, cols=4, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)
        assert metrics.shrinks >= 1
        assert metrics.preemptions == 0
        victim_record = next(r for r in metrics.records
                             if r.session_id == 0)
        assert victim_record.resizes >= 1

    def test_shrunk_victim_grows_back_when_queue_drains(self):
        scheduler, hypervisor = elastic_cluster(elastic="shrink")
        trace = [
            session(0, arrival=1, rows=2, cols=4, priority=0,
                    inferences=400),
            session(1, arrival=100, rows=3, cols=4, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)
        # After the gold departs the queue is empty: the victim grows
        # back to its requested mesh before finishing.
        assert metrics.grows >= 1
        victim_record = next(r for r in metrics.records
                             if r.session_id == 0)
        assert victim_record.resizes >= 2  # shrink + grow-back

    def test_victim_slowdown_is_charged(self):
        """A shrunk victim departs later than it would have unsqueezed."""
        def depart(elastic):
            scheduler, _ = elastic_cluster(elastic=elastic)
            trace = [
                session(0, arrival=1, rows=2, cols=4, priority=0,
                        inferences=400),
                session(1, arrival=100, rows=3, cols=4, slo="gold",
                        inferences=5),
            ]
            metrics = scheduler.serve(trace)
            return next(r.depart_cycle for r in metrics.records
                        if r.session_id == 0)
        assert depart("shrink") > depart(None)

    def test_gold_never_victimized(self):
        """Gold residents are neither shrinkable nor preemptible: a
        second gold arrival waits instead of squeezing the first."""
        scheduler, _ = elastic_cluster()
        trace = [
            session(0, arrival=1, rows=4, cols=4, slo="gold",
                    inferences=50),
            session(1, arrival=100, rows=4, cols=4, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)
        assert metrics.preemptions == 0
        assert metrics.shrinks == 0
        first = next(r for r in metrics.records if r.session_id == 0)
        assert first.preemptions == 0 and first.resizes == 0

    def test_relief_feeds_the_triggering_entry_not_the_queue_head(self):
        """Under FCFS the freed cores must go to the gold arrival whose
        relief squeezed the victims — not to the best-effort queue head
        that happens to be first in line."""
        scheduler, _ = elastic_cluster(policy="fcfs")
        trace = [
            session(0, arrival=1, rows=4, cols=4, priority=0,
                    inferences=500),
            # Queue head: big best-effort that also cannot fit.
            session(1, arrival=50, rows=4, cols=4, priority=0,
                    inferences=500),
            session(2, arrival=100, rows=4, cols=4, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)
        gold_record = next(r for r in metrics.records if r.session_id == 2)
        head_record = next(r for r in metrics.records if r.session_id == 1)
        assert metrics.preemptions >= 1
        assert gold_record.admit_cycle < head_record.admit_cycle
        assert gold_record.queue_delay_cycles < 2_000_000

    def test_preempted_session_requeues_in_arrival_order(self):
        """An evicted victim re-enters the FCFS line by arrival cycle,
        ahead of later arrivals, instead of being appended at the tail."""
        scheduler, _ = elastic_cluster(policy="fcfs")
        trace = [
            session(0, arrival=1, rows=4, cols=4, priority=0,
                    inferences=300),
            session(1, arrival=100, rows=4, cols=4, slo="gold",
                    inferences=5),
            # Arrives later than the victim: must not overtake it.
            session(2, arrival=200, rows=4, cols=4, priority=0,
                    inferences=10),
        ]
        metrics = scheduler.serve(trace)
        victim = next(r for r in metrics.records if r.session_id == 0)
        later = next(r for r in metrics.records if r.session_id == 2)
        assert victim.preemptions == 1
        assert victim.admit_cycle <= later.admit_cycle

    def test_grow_back_restores_exact_memory_request(self):
        """Indivisible memory sizes survive a shrink/grow round trip."""
        scheduler, hypervisor = elastic_cluster(elastic="shrink")
        odd_memory = 100 * MB  # not divisible by 8 cores
        tenant = TenantSession(
            session_id=0, tenant="t0", arrival_cycle=1, rows=2, cols=4,
            memory_bytes=odd_memory, model="alexnet", inferences=400)
        gold_arrival = session(1, arrival=100, rows=3, cols=4, slo="gold",
                               inferences=5)
        vmids = []
        original_resize = hypervisor.resize_vnpu

        def spy(vmid, spec, strategy=None):
            result = original_resize(vmid, spec, strategy=strategy)
            vmids.append((spec.core_count, result[0].memory_bytes))
            return result
        hypervisor.resize_vnpu = spy
        metrics = scheduler.serve([tenant, gold_arrival])
        assert metrics.shrinks >= 1 and metrics.grows >= 1
        grow_events = [m for cores, m in vmids if cores == 8]
        assert grow_events and all(m == odd_memory for m in grow_events)

    def test_topology_blocked_preemption_does_not_livelock(self):
        """Preemption is not monotonic — an evicted victim can re-admit
        to the exact cores it held. When the triggering entry is
        topology-blocked (here: strategy=\"exact\" with no isomorphic
        2x2 in the remaining L-shape), relief must spend its budget and
        stop instead of evicting the victim forever."""
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, Hypervisor(chip),
                                     policy="priority", strategy="exact",
                                     elastic="preempt")
        trace = [
            session(0, arrival=1, rows=3, cols=3, slo="gold",
                    inferences=500),
            session(1, arrival=2, rows=1, cols=2, priority=0,
                    inferences=500),
            session(2, arrival=100, rows=2, cols=2, slo="gold",
                    inferences=5),
        ]
        metrics = scheduler.serve(trace)  # hung forever before the fix
        assert len(metrics.records) == 3

    def test_static_behavior_has_no_elastic_side_effects(self):
        """elastic=None never squeezes anyone — the pre-elastic schedule
        (pinned separately by the unchanged BENCH artifacts and replay
        determinism tests) stays in force."""
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, Hypervisor(chip),
                                     policy="fcfs", elastic=None)
        metrics = scheduler.serve(generate_trace(23, 30, max_cores=16))
        assert metrics.preemptions == 0
        assert metrics.shrinks == 0 and metrics.grows == 0
        assert metrics.resize_cycles == 0
        assert all(r.preemptions == 0 and r.resizes == 0
                   for r in metrics.records)

    def test_elastic_run_is_deterministic(self):
        trace = generate_trace(31, 40, max_cores=16,
                               mean_interarrival_cycles=1_000_000,
                               arrival_process="bursty",
                               slo_mix=DEFAULT_SLO_MIX)

        def run():
            scheduler, _ = elastic_cluster()
            metrics = scheduler.serve(trace)
            return (metrics.records, metrics.preemptions, metrics.shrinks,
                    metrics.grows, metrics.resize_cycles)
        assert run() == run()


class TestElasticFleet:
    def test_fleet_elastic_improves_gold_attainment(self):
        trace = generate_fleet_trace(7, 120, chips=4, max_cores=16,
                                     mean_interarrival_cycles=10_000_000,
                                     arrival_process="bursty",
                                     slo_mix=DEFAULT_SLO_MIX)

        def run(elastic):
            fleet = FleetScheduler.homogeneous(4, cores=16,
                                               policy="priority",
                                               elastic=elastic)
            metrics = fleet.serve(trace)
            summary = metrics.summary(500_000_000)
            return summary["slo"]["classes"]["gold"], metrics

        static_gold, _ = run(None)
        elastic_gold, metrics = run("shrink_then_preempt")
        assert metrics.preemptions + metrics.shrinks > 0
        assert elastic_gold["attainment"] > static_gold["attainment"]
        assert (elastic_gold["p99_queue_delay_cycles"]
                < static_gold["p99_queue_delay_cycles"])

    def test_fleet_elastic_leaves_chips_clean(self):
        trace = generate_fleet_trace(11, 60, chips=3, max_cores=16,
                                     mean_interarrival_cycles=5_000_000,
                                     arrival_process="bursty",
                                     slo_mix=DEFAULT_SLO_MIX)
        fleet = FleetScheduler.homogeneous(3, cores=16, policy="priority",
                                           elastic="shrink_then_preempt")
        metrics = fleet.serve(trace)
        assert len(metrics.records) + metrics.rejected == len(trace)
        for fleet_chip in fleet.chips:
            assert fleet_chip.hypervisor.vnpus == []
            assert fleet_chip.hypervisor.buddy.fully_coalesced

    def test_fleet_records_carry_slo_fields(self):
        trace = generate_fleet_trace(3, 20, chips=2, max_cores=16,
                                     slo_mix=DEFAULT_SLO_MIX)
        fleet = FleetScheduler.homogeneous(2, cores=16)
        metrics = fleet.serve(trace)
        assert all(r.slo in {"gold", "silver", "best_effort"}
                   for r in metrics.records)


class TestRepriceClamp:
    """Regression: the un-served fraction fed into a resize re-pricing
    must clamp at 1.0. Migration charges stretch ``expected_depart``
    without touching ``service_total``, so a victim migrated and *then*
    shrunk used to show ``remaining > service_total`` and re-bill the
    already-charged migration at the new placement's rate."""

    class Dummy:
        def __init__(self, service_total, expected_depart):
            self.service_total = service_total
            self.expected_depart = expected_depart

    def test_migration_stretched_remaining_is_clamped(self):
        from repro.serving.slo import reprice
        # Admitted at 0 for 1_000 cycles, then a migration charged 500:
        # at now=200 the raw fraction would be 1_300/1_000 = 1.3.
        active = self.Dummy(service_total=1_000, expected_depart=1_500)
        reprice(active, new_total=2_000, charge=100, now=200)
        assert active.service_total == 2_000
        # Clamped: full remaining service at the new rate plus the
        # resize charge — not 1.3x of it.
        assert active.expected_depart == 200 + 2_000 + 100

    def test_unstretched_fraction_still_prorates(self):
        from repro.serving.slo import reprice
        active = self.Dummy(service_total=1_000, expected_depart=1_000)
        reprice(active, new_total=2_000, charge=0, now=500)
        assert active.expected_depart == 500 + 1_000  # half left, 2x rate

    def test_migrate_then_shrink_projection_stays_bounded(self):
        """End-to-end: a defrag-migrated tenant that is then elastically
        shrunk never projects past now + new_total + charge."""
        from repro.serving.fleet import ActiveFleetSession
        from repro.serving.slo import BEST_EFFORT, reprice
        active = ActiveFleetSession(
            session=session(session_id=1), chip_index=0, vmid=1,
            admit_cycle=0, strategy="similar", mapping_distance=0.0,
            mapping_connected=True, slo=BEST_EFFORT, rows=2, cols=2,
            service_total=1_000, expected_depart=1_000,
        )
        active.expected_depart += 700   # migration charge, service_total kept
        reprice(active, new_total=900, charge=50, now=400)
        assert active.expected_depart <= 400 + 900 + 50
