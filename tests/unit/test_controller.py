"""Unit tests for the NPU controller: dispatch + hyper mode."""

import pytest

from repro.arch import calibration
from repro.arch.controller import NpuController
from repro.arch.topology import Topology
from repro.core.routing_table import StandardRoutingTable
from repro.errors import ConfigError, HyperModeViolation


@pytest.fixture
def controller():
    return NpuController(Topology.mesh2d(2, 4))


class TestHyperMode:
    def test_guest_cannot_install_table(self, controller):
        table = StandardRoutingTable(1, {0: 0})
        with pytest.raises(HyperModeViolation):
            controller.install_routing_table(table)

    def test_hyper_install_returns_config_cycles(self, controller):
        table = StandardRoutingTable(1, {v: v for v in range(8)})
        cycles = controller.install_routing_table(table, hyper_mode=True)
        assert cycles == (calibration.RT_CONFIG_BASE
                          + 8 * calibration.RT_CONFIG_PER_CORE)

    def test_guest_cannot_remove_table(self, controller):
        table = StandardRoutingTable(1, {0: 0})
        controller.install_routing_table(table, hyper_mode=True)
        with pytest.raises(HyperModeViolation):
            controller.remove_routing_table(1)

    def test_table_to_nonexistent_core_rejected(self, controller):
        table = StandardRoutingTable(1, {0: 99})
        with pytest.raises(ConfigError):
            controller.install_routing_table(table, hyper_mode=True)


class TestDispatch:
    def test_dispatch_translates_and_prices(self, controller):
        table = StandardRoutingTable(1, {0: 5, 1: 6})
        controller.install_routing_table(table, hyper_mode=True)
        record = controller.dispatch(1, 0)
        assert record.p_core == 5
        assert record.translate_cycles == calibration.VROUTER_RT_LOOKUP
        hops = controller.topology.hop_distance(0, 5)
        assert record.dispatch_cycles == (
            calibration.INOC_DISPATCH_BASE
            + hops * calibration.INOC_DISPATCH_PER_HOP
        )

    def test_inoc_latency_grows_with_distance(self, controller):
        """Fig 12: farther cores cost more over the instruction NoC."""
        table = StandardRoutingTable(1, {v: v for v in range(8)})
        controller.install_routing_table(table, hyper_mode=True)
        latencies = [controller.dispatch(1, v).dispatch_cycles
                     for v in range(8)]
        assert latencies[0] < latencies[7]
        assert latencies == sorted(latencies) or len(set(latencies)) > 1

    def test_ibus_latency_fixed(self):
        controller = NpuController(Topology.mesh2d(2, 4),
                                   dispatch_mode="ibus")
        table = StandardRoutingTable(1, {v: v for v in range(8)})
        controller.install_routing_table(table, hyper_mode=True)
        latencies = {controller.dispatch(1, v).dispatch_cycles
                     for v in range(8)}
        assert latencies == {calibration.IBUS_LATENCY}

    def test_cached_redirect_total(self, controller):
        table = StandardRoutingTable(1, {0: 3})
        controller.install_routing_table(table, hyper_mode=True)
        first = controller.dispatch(1, 0)
        second = controller.dispatch(1, 0)
        assert second.total_cycles == first.total_cycles - first.translate_cycles

    def test_invalid_dispatch_mode(self):
        with pytest.raises(ConfigError):
            NpuController(Topology.mesh2d(2, 2), dispatch_mode="carrier-pigeon")

    def test_invalid_port_core(self):
        with pytest.raises(ConfigError):
            NpuController(Topology.mesh2d(2, 2), port_core=50)
