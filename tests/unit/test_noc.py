"""Unit tests for the NoC model: routing, serialization, contention."""

import pytest

from repro.arch.config import NoCConfig
from repro.arch.noc import NoC
from repro.arch.topology import Topology
from repro.errors import RoutingError
from repro.sim import Simulator


def make_noc(rows=3, cols=3, **cfg):
    sim = Simulator()
    topo = Topology.mesh2d(rows, cols)
    noc = NoC(sim, topo, NoCConfig(**cfg) if cfg else None)
    return sim, noc


def run_transfer(sim, noc, **kwargs):
    proc = noc.transfer(**kwargs)
    sim.run_until_processes_done()
    return proc.value


class TestRouting:
    def test_route_is_dor_on_mesh(self):
        _, noc = make_noc()
        assert noc.route(0, 8) == [0, 1, 2, 5, 8]

    def test_route_bfs_without_coords(self):
        sim = Simulator()
        ring = Topology.ring(6)
        noc = NoC(sim, ring)
        path = noc.route(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4

    def test_validate_rejects_non_link_steps(self):
        _, noc = make_noc()
        with pytest.raises(RoutingError):
            noc.validate_path([0, 8])

    def test_transfer_rejects_mismatched_path(self):
        sim, noc = make_noc()
        with pytest.raises(RoutingError):
            noc.transfer(0, 8, 100, path=[0, 1, 2])

    def test_transfer_rejects_empty_payload(self):
        sim, noc = make_noc()
        with pytest.raises(RoutingError):
            noc.transfer(0, 1, 0)


class TestLatency:
    def test_single_hop_single_packet(self):
        sim, noc = make_noc()
        record = run_transfer(sim, noc, src=0, dst=1, payload_bytes=2048)
        cfg = noc.config
        expected = (
            cfg.transfer_setup
            + cfg.packet_serialization() + cfg.packet_handshake
            + cfg.router_latency
        )
        assert record.latency == expected

    def test_table3_slope_and_intercept(self):
        """2 packets over 1 hop ~ 309 clk; 30 packets ~ 4236 clk (Table 3)."""
        for packets, paper_clk in [(2, 309), (10, 1430), (20, 2810), (30, 4236)]:
            sim, noc = make_noc()
            record = run_transfer(
                sim, noc, src=0, dst=1, payload_bytes=2048 * packets,
            )
            assert record.packet_count == packets
            assert abs(record.latency - paper_clk) / paper_clk < 0.05

    def test_packets_pipeline_across_hops(self):
        """Multi-hop adds per-hop latency once, not per packet."""
        sim1, noc1 = make_noc()
        one_hop = run_transfer(sim1, noc1, src=0, dst=1, payload_bytes=2048 * 10)
        sim3, noc3 = make_noc()
        three_hop = run_transfer(sim3, noc3, src=0, dst=3, payload_bytes=2048 * 10)
        per_hop = (
            noc1.config.packet_serialization()
            + noc1.config.packet_handshake
            + noc1.config.router_latency
        )
        assert three_hop.latency - one_hop.latency <= 2 * per_hop + 2

    def test_first_packet_and_completion_delays(self):
        sim, noc = make_noc()
        base = run_transfer(sim, noc, src=0, dst=1, payload_bytes=2048)
        sim2, noc2 = make_noc()
        delayed = run_transfer(
            sim2, noc2, src=0, dst=1, payload_bytes=2048,
            first_packet_delay=30, completion_delay=60,
        )
        assert delayed.latency == base.latency + 90


class TestContention:
    def test_two_transfers_sharing_a_link_serialize(self):
        sim, noc = make_noc(rows=1, cols=3)
        proc_a = noc.transfer(0, 2, 2048)
        proc_b = noc.transfer(0, 2, 2048)
        sim.run_until_processes_done()
        lat_a = proc_a.value.latency
        lat_b = proc_b.value.latency
        occupancy = noc.config.packet_serialization() + noc.config.packet_handshake
        assert max(lat_a, lat_b) >= min(lat_a, lat_b) + occupancy

    def test_disjoint_transfers_do_not_interact(self):
        sim, noc = make_noc(rows=2, cols=2)
        proc_a = noc.transfer(0, 1, 2048)
        proc_b = noc.transfer(2, 3, 2048)
        sim.run_until_processes_done()
        assert proc_a.value.latency == proc_b.value.latency

    def test_link_stats_accumulate(self):
        sim, noc = make_noc()
        run_transfer(sim, noc, src=0, dst=2, payload_bytes=2048 * 3, vmid=7)
        stats = noc.link_stats[(0, 1)]
        assert stats.packets == 3
        assert stats.vmids == {7}
        assert noc.busiest_links(top=1)[0][1] > 0

    def test_shared_links_detects_cross_vm_traffic(self):
        sim, noc = make_noc(rows=1, cols=3)
        noc.transfer(0, 2, 2048, vmid=1)
        noc.transfer(0, 2, 2048, vmid=2)
        sim.run_until_processes_done()
        assert (0, 1) in noc.shared_links()


class TestInterference:
    def test_foreign_traversal_recorded(self):
        sim, noc = make_noc()
        record = run_transfer(
            sim, noc, src=0, dst=8, payload_bytes=2048,
            allowed_nodes={0, 3, 6, 7, 8},
        )
        # DOR goes 0-1-2-5-8; nodes 1, 2, 5 are foreign.
        assert record.foreign_nodes == [1, 2, 5]
        assert record.interfered
        assert noc.total_foreign_traversals == 3

    def test_explicit_path_confines_packets(self):
        sim, noc = make_noc()
        record = run_transfer(
            sim, noc, src=0, dst=8, payload_bytes=2048,
            path=[0, 3, 6, 7, 8],
            allowed_nodes={0, 3, 6, 7, 8},
        )
        assert not record.interfered

    def test_local_transfer_zero_hops(self):
        sim, noc = make_noc()
        record = run_transfer(sim, noc, src=4, dst=4, payload_bytes=4096)
        assert record.path == [4]
        assert record.latency > 0
