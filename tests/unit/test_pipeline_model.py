"""Unit tests for the steady-state pipeline model."""

import pytest

from repro.arch.config import fpga_config, sim_config
from repro.compiler.placement import PhysicalFlow, PlacedTask
from repro.errors import ConfigError
from repro.runtime.pipeline import SteadyStateModel


def task(name, core_macs, flows=(), vrouter_overhead=0, stream_bytes=None,
         owned=None):
    return PlacedTask(
        name=name,
        vmid=None,
        core_macs=dict(core_macs),
        weight_bytes={c: 1000 for c in core_macs},
        stream_bytes=dict(stream_bytes or {}),
        flows=list(flows),
        vrouter_overhead=vrouter_overhead,
        owned_cores=frozenset(owned or core_macs),
    )


def flow(src, dst, nbytes, path=None):
    return PhysicalFlow(src=src, dst=dst, nbytes=nbytes,
                        path=tuple(path or (src, dst)), kind="pipeline")


@pytest.fixture
def model():
    return SteadyStateModel(fpga_config())


class TestBottleneck:
    def test_compute_bound_single_core(self, model):
        estimate = model.estimate([task("t", {0: 1_000_000})])["t"]
        assert estimate.bottleneck == ("core", 0)
        assert estimate.iteration_cycles == model.compute.cycles_for_macs(1_000_000)

    def test_pipeline_bounded_by_heaviest_stage(self, model):
        estimate = model.estimate(
            [task("t", {0: 1_000_000, 1: 4_000_000})])["t"]
        assert estimate.bottleneck == ("core", 1)

    def test_link_bound_when_flows_dominate(self, model):
        heavy_flow = flow(0, 1, 1 << 20)
        estimate = model.estimate(
            [task("t", {0: 100, 1: 100}, [heavy_flow])])["t"]
        assert estimate.bottleneck[0] == "link"

    def test_fps_inverse_of_interval(self, model):
        estimate = model.estimate([task("t", {0: 1_000_000})])["t"]
        assert estimate.fps == pytest.approx(
            model.config.frequency_hz / estimate.iteration_cycles)

    def test_empty_rejected(self, model):
        with pytest.raises(ConfigError):
            model.estimate([])


class TestSharing:
    def test_tdm_core_sharing_sums_compute(self, model):
        a = task("a", {0: 1_000_000})
        b = task("b", {0: 1_000_000})
        estimates = model.estimate([a, b])
        solo = model.estimate([task("a", {0: 1_000_000})])["a"]
        assert estimates["a"].iteration_cycles == 2 * solo.iteration_cycles
        assert estimates["a"].interference_fraction == pytest.approx(0.5)

    def test_disjoint_tasks_do_not_interact(self, model):
        a = task("a", {0: 1_000_000})
        b = task("b", {5: 9_000_000})
        estimates = model.estimate([a, b])
        assert estimates["a"].interference_cycles == 0

    def test_shared_link_interference(self, model):
        a = task("a", {0: 100, 2: 100}, [flow(0, 2, 1 << 18, path=(0, 1, 2))])
        b = task("b", {4: 100, 1: 100}, [flow(4, 2, 1 << 18, path=(4, 0, 1, 2))])
        estimates = model.estimate([a, b])
        # Both route over link (1, 2): each sees the other's serialization.
        assert estimates["a"].interference_cycles > 0


class TestUvmMode:
    def test_uvm_slower_than_noc(self, model):
        flows = [flow(0, 1, 65536)]
        noc = model.estimate([task("t", {0: 10_000, 1: 10_000}, flows)])["t"]
        uvm = model.estimate([task("t", {0: 10_000, 1: 10_000}, flows)],
                             uvm_tasks={"t"})["t"]
        assert uvm.iteration_cycles > noc.iteration_cycles

    def test_uvm_tasks_contend_on_memory(self, model):
        tasks = [
            task(f"t{i}", {2 * i: 100, 2 * i + 1: 100},
                 [flow(2 * i, 2 * i + 1, 1 << 20)])
            for i in range(3)
        ]
        solo = model.estimate([tasks[0]], uvm_tasks={"t0"})["t0"]
        together = model.estimate(
            tasks, uvm_tasks={"t0", "t1", "t2"})["t0"]
        assert together.iteration_cycles > solo.iteration_cycles
        assert together.bottleneck == ("mem",)

    def test_noc_tasks_do_not_touch_memory(self, model):
        a = task("a", {0: 100, 1: 100}, [flow(0, 1, 1 << 20)])
        estimate = model.estimate([a])["a"]
        assert estimate.bottleneck[0] in ("core", "link")


class TestVirtualizationOverhead:
    def test_vrouter_overhead_is_small(self, model):
        """§6.3.3: < 1 % end-to-end for realistic stage sizes."""
        flows = [flow(0, 1, 16384)]
        bare = model.estimate(
            [task("t", {0: 5_000_000, 1: 5_000_000}, flows)])["t"]
        virt = model.estimate(
            [task("t", {0: 5_000_000, 1: 5_000_000}, flows,
                  vrouter_overhead=91)])["t"]
        overhead = (virt.iteration_cycles - bare.iteration_cycles)
        assert overhead / bare.iteration_cycles < 0.01


class TestStreamingAndWarmup:
    def test_stream_bytes_charge_core_and_memory(self, model):
        resident = model.estimate([task("t", {0: 1000})])["t"]
        streaming = model.estimate(
            [task("t", {0: 1000}, stream_bytes={0: 10 << 20})])["t"]
        assert streaming.iteration_cycles > resident.iteration_cycles

    def test_warmup_scales_with_interfaces(self, model):
        placed = task("t", {0: 1000})
        placed.weight_bytes = {0: 64 << 20}
        slow = model.warmup_cycles(placed, interface_count=1,
                                   total_interfaces=4)
        fast = model.warmup_cycles(placed, interface_count=4,
                                   total_interfaces=4)
        assert slow > 3 * fast

    def test_warmup_needs_interfaces(self, model):
        with pytest.raises(ConfigError):
            model.warmup_cycles(task("t", {0: 1}), 1, 0)


class TestSimConfigScale:
    def test_sim_chip_is_much_faster(self):
        fpga = SteadyStateModel(fpga_config())
        sim = SteadyStateModel(sim_config(36))
        work = [task("t", {0: 50_000_000})]
        assert (sim.estimate(work)["t"].iteration_cycles
                < fpga.estimate(work)["t"].iteration_cycles / 10)
