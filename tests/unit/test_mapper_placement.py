"""Unit tests for stage mapping and physical placement."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape, Topology
from repro.compiler.mapper import map_stages, snake_order
from repro.compiler.partitioner import partition
from repro.compiler.placement import place_bare_metal, place_on_vnpu
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import CompilationError
from repro.workloads import resnet, transformer_block
from repro.workloads.graph import Layer, ModelGraph


def chain_model(loads, act_bytes=4096):
    g = ModelGraph("chain")
    for index, macs in enumerate(loads):
        g.add_layer(Layer(f"l{index}", "fc", macs, macs, act_bytes))
    return g


class TestSnakeOrder:
    def test_mesh_snake_is_adjacent(self):
        topo = Topology.mesh2d(3, 4)
        order = snake_order(topo)
        for a, b in zip(order, order[1:]):
            assert topo.has_edge(a, b)

    def test_covers_all_nodes(self):
        topo = Topology.mesh2d(4, 4)
        assert sorted(snake_order(topo)) == topo.nodes

    def test_non_mesh_uses_bfs(self):
        ring = Topology.ring(6)
        order = snake_order(ring)
        assert sorted(order) == ring.nodes


class TestMapStages:
    def test_pipeline_flows_follow_edges(self):
        model = chain_model([10, 10, 10])
        mapped = map_stages(partition(model, 3), Topology.mesh2d(1, 3))
        assert len(mapped.flows) == 2
        for flow in mapped.flows:
            assert flow.kind == "pipeline"
            assert flow.nbytes == 4096

    def test_zero_byte_edges_skipped(self):
        model = chain_model([10, 10], act_bytes=0)
        mapped = map_stages(partition(model, 2), Topology.mesh2d(1, 2))
        assert mapped.flows == []

    def test_split_stage_gets_allgather_ring(self):
        model = chain_model([100])
        mapped = map_stages(partition(model, 4), Topology.mesh2d(2, 2))
        gathers = [f for f in mapped.flows if f.kind == "allgather"]
        assert len(gathers) == 4  # ring over 4 replicas

    def test_too_many_slots_rejected(self):
        model = chain_model([10, 10, 10])
        with pytest.raises(CompilationError):
            map_stages(partition(model, 3), Topology.mesh2d(1, 2))

    def test_compute_and_weights_per_core(self):
        model = chain_model([100, 50])
        mapped = map_stages(partition(model, 2), Topology.mesh2d(1, 2))
        assert sorted(mapped.compute_macs.values()) == [50, 100]
        assert sum(mapped.weight_bytes.values()) == 150

    def test_streaming_stage_reports_stream_bytes(self):
        model = chain_model([1000])
        plan = partition(model, 1, weight_zone_bytes=10)
        mapped = map_stages(plan, Topology.mesh2d(1, 1))
        assert mapped.stream_bytes == {0: 1000}
        assert mapped.weight_bytes == {0: 0}


class TestPlacement:
    def make_vnpu(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 64 * MB))
        return chip, vnpu

    def test_vnpu_placement_translates_cores(self):
        chip, vnpu = self.make_vnpu()
        model = chain_model([10, 10, 10, 10])
        mapped = map_stages(partition(model, 4), vnpu.virtual_topology())
        placed = place_on_vnpu(mapped, vnpu, chip.topology)
        assert set(placed.cores) == set(vnpu.physical_cores)
        assert placed.vmid == vnpu.vmid
        assert placed.vrouter_overhead > 0

    def test_flows_have_physical_paths(self):
        chip, vnpu = self.make_vnpu()
        model = chain_model([10, 10, 10, 10])
        mapped = map_stages(partition(model, 4), vnpu.virtual_topology())
        placed = place_on_vnpu(mapped, vnpu, chip.topology)
        for flow in placed.flows:
            assert flow.path[0] == flow.src
            assert flow.path[-1] == flow.dst
            for u, v in zip(flow.path, flow.path[1:]):
                assert chip.topology.has_edge(u, v)

    def test_confined_flows_stay_inside_vnpu(self):
        chip, vnpu = self.make_vnpu()
        model = chain_model([10, 10, 10, 10])
        mapped = map_stages(partition(model, 4), vnpu.virtual_topology())
        placed = place_on_vnpu(mapped, vnpu, chip.topology)
        assert placed.foreign_traversals() == 0

    def test_unknown_virtual_core_rejected(self):
        chip, vnpu = self.make_vnpu()
        model = chain_model([10] * 9)
        mapped = map_stages(partition(model, 9), Topology.mesh2d(3, 3))
        with pytest.raises(CompilationError):
            place_on_vnpu(mapped, vnpu, chip.topology)

    def test_bare_metal_identity(self):
        chip = Chip(sim_config(36))
        model = chain_model([10, 10, 10, 10])
        mapped = map_stages(partition(model, 4),
                            chip.topology.subtopology([0, 1, 6, 7]))
        placed = place_bare_metal(mapped, chip.topology)
        assert placed.vmid is None
        assert placed.vrouter_overhead == 0
        assert set(placed.cores) == {0, 1, 6, 7}

    def test_bare_metal_unknown_core(self):
        chip = Chip(sim_config(36))
        model = chain_model([10])
        mapped = map_stages(partition(model, 1), Topology.mesh2d(1, 1))
        bad = Topology([99], [])
        mapped2 = map_stages(partition(model, 1), bad)
        with pytest.raises(CompilationError):
            place_bare_metal(mapped2, chip.topology)


class TestRealModels:
    def test_resnet34_on_24_cores(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("r", MeshShape(4, 6), 128 * MB))
        model = resnet(34)
        mapped = map_stages(
            partition(model, 24,
                      weight_zone_bytes=chip.config.core.weight_zone_bytes),
            vnpu.virtual_topology(),
        )
        placed = place_on_vnpu(mapped, vnpu, chip.topology)
        assert len(placed.cores) == 24
        assert placed.flows  # residual edges generate traffic

    def test_transformer_block_on_4(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 64 * MB))
        mapped = map_stages(partition(transformer_block(128, 16), 4),
                            vnpu.virtual_topology())
        placed = place_on_vnpu(mapped, vnpu, chip.topology)
        assert len(placed.cores) == 4
