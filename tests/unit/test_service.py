"""The always-on control plane: protocol, bridge, backpressure, restart.

Four contracts:

- The wire protocol is canonical and fail-fast: one JSON object per
  line, byte-stable encoding, malformed input rejected at the edge
  with :class:`ProtocolError` (never a mid-simulation surprise).
- The determinism bridge: a scripted client that admits everything and
  then drains an ``asap`` service reproduces batch ``serve()`` **byte
  for byte** — over a real Unix socket, not just in process.
- Backpressure never silently drops: over ``max_pending`` the service
  answers ``busy`` with a retry hint, and the refused sessions can be
  re-admitted and completed later — every offered session finishes.
- Warm restart: snapshot mid-run, rebuild the service — in-process or
  in a genuinely fresh interpreter via the CLI — and the continued run
  byte-equals the run that never stopped.
"""

import asyncio
import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServingError
from repro.serving import (
    DEFAULT_SLO_MIX,
    ControlPlane,
    FleetScheduler,
    ProtocolError,
    ServiceClient,
    ServingConfig,
    canonical_json,
    decode_message,
    encode_message,
    generate_fleet_trace,
    summary_wire,
)
from repro.serving.protocol import request, session_from_wire, session_to_wire

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The bench's serving configuration: non-default policy + elastic so
#: the bridge is pinned on an interesting scheduler, not the defaults.
CONFIG = ServingConfig(policy="priority", elastic="shrink_then_preempt")


def fleet_trace(seed=11, sessions=30, chips=4):
    return generate_fleet_trace(seed, sessions, chips=chips, max_cores=16,
                                arrival_process="bursty",
                                slo_mix=DEFAULT_SLO_MIX)


def batch_summary(trace, config=CONFIG, chips=4):
    """The never-stopped oracle: batch submit + run, canonical bytes."""
    fleet = FleetScheduler.homogeneous(chips, cores=16, config=config)
    fleet.submit(list(trace))
    fleet.run()
    frequency = fleet.chips[0].chip.config.frequency_hz
    return canonical_json(summary_wire(fleet.metrics.summary(frequency)))


def make_plane(trace_len=64, **kwargs):
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("autostart", False)
    kwargs.setdefault("max_pending", trace_len + 1)
    return ControlPlane(chips=4, cores=16, **kwargs)


class TestProtocol:
    def test_encode_decode_roundtrip_is_canonical(self):
        message = {"op": "status", "zeta": 1, "alpha": [1, 2]}
        line = encode_message(message)
        # Canonical spelling: sorted keys, minimal separators, one \n.
        assert line == b'{"alpha":[1,2],"op":"status","zeta":1}\n'
        assert decode_message(line) == message

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="bad wire JSON"):
            decode_message(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_message(b"[1, 2, 3]\n")

    def test_decode_rejects_oversized_line(self):
        blob = b'{"op": "' + b"x" * (1 << 20) + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(blob)

    def test_request_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="choose from"):
            request("reboot")

    def test_session_wire_roundtrip(self):
        session = fleet_trace(sessions=3)[0]
        assert session_from_wire(session_to_wire(session)) == session

    def test_session_wire_rejects_unknown_fields(self):
        wire = session_to_wire(fleet_trace(sessions=3)[0])
        wire["colour"] = "blue"
        with pytest.raises(ProtocolError, match="unknown session fields"):
            session_from_wire(wire)

    def test_session_wire_rejects_missing_fields(self):
        wire = session_to_wire(fleet_trace(sessions=3)[0])
        del wire["model"]
        with pytest.raises(ProtocolError, match="missing required"):
            session_from_wire(wire)


class TestDeterminismBridge:
    def test_scripted_client_byte_equals_batch(self, tmp_path):
        # The tentpole acceptance: admit the whole trace over a real
        # Unix socket, drain, and the wire summary is byte-identical
        # to batch serve() on the same trace.
        trace = fleet_trace()

        async def scripted():
            plane = make_plane(trace_len=len(trace))
            socket_path = str(tmp_path / "svc.sock")
            await plane.start(unix_path=socket_path)
            client = await ServiceClient.connect(unix_path=socket_path)
            for session in trace:
                response = await client.admit(session)
                assert response["status"] == "ok"
            drained = await client.drain()
            await client.shutdown()
            await client.close()
            await plane.stop()
            return canonical_json(drained["summary"])

        assert asyncio.run(scripted()) == batch_summary(trace)

    def test_tcp_endpoint_serves_status(self):
        async def over_tcp():
            plane = make_plane()
            await plane.start(port=0)  # ephemeral
            assert plane.tcp_port is not None
            client = await ServiceClient.connect(port=plane.tcp_port)
            status = await client.status()
            await client.close()
            await plane.stop()
            return status

        status = asyncio.run(over_tcp())
        assert status["status"] == "ok"
        assert status["chips"] == 4
        # The status payload carries the config as its wire dict.
        assert ServingConfig.from_dict(status["config"]) == CONFIG

    def test_drain_until_parks_the_clock(self):
        trace = fleet_trace(sessions=10)

        async def bounded():
            plane = make_plane()
            for session in trace:
                plane.admit(session)
            horizon = 10**13  # far beyond the last event
            partial = await plane.drain(until=horizon)
            assert partial["cycle"] == horizon  # run(until=) semantics
            assert "summary" not in partial  # bounded drain: no summary
            final = await plane.drain()
            return final

        final = asyncio.run(bounded())
        assert final["summary"]["sessions_completed"] == len(trace)

    def test_realtime_pacer_advances_with_the_wall(self, tmp_path):
        # autostart realtime: the pacer couples the simulated clock to
        # scaled wall time with no explicit drain request.
        trace = fleet_trace(sessions=6)

        async def realtime():
            plane = make_plane(mode="realtime", autostart=True,
                               cycles_per_second=2_000_000_000)
            sock = str(tmp_path / "rt.sock")
            await plane.start(unix_path=sock)
            client = await ServiceClient.connect(unix_path=sock)
            for session in trace:
                assert (await client.admit(session))["status"] == "ok"
            cycle = 0
            for _ in range(400):  # pacer ticks every 5 ms
                await asyncio.sleep(0.02)
                cycle = (await client.metrics())["cycle"]
                if cycle > 0:
                    break
            shut = await client.shutdown()
            await client.close()
            await plane.serve_until_shutdown()  # already signalled
            return cycle, shut

        cycle, shut = asyncio.run(realtime())
        assert cycle > 0
        assert shut["status"] == "ok"

    def test_live_metrics_move_during_a_run(self):
        trace = fleet_trace(sessions=10)

        async def probe():
            plane = make_plane()
            for session in trace:
                plane.admit(session)
            before = plane.metrics_payload()
            await plane.drain(until=trace[-1].arrival_cycle)
            during = plane.metrics_payload()
            await plane.drain()
            after = plane.metrics_payload()
            return before, during, after

        before, during, after = asyncio.run(probe())
        assert before["summary"]["sessions_completed"] == 0
        assert during["cycle"] > before["cycle"]
        assert after["summary"]["sessions_completed"] == len(trace)
        assert after["pending"] == 0 and after["active"] == 0


class TestBackpressure:
    def test_busy_over_the_bound_then_no_silent_drops(self):
        trace = fleet_trace(sessions=8)

        async def offered_all():
            plane = make_plane(max_pending=4)
            first, refused = [], []
            for session in trace:
                response = plane.admit(session)
                if response["status"] == "ok":
                    first.append(session)
                else:
                    assert response["status"] == "busy"
                    assert response["retry_after_cycles"] >= 1
                    refused.append(session)
            assert len(first) == 4 and len(refused) == 4
            assert plane.busy_responses == 4
            mid = await plane.drain()
            assert mid["summary"]["sessions_completed"] == 4
            # The refused sessions were never enqueued — re-admitting
            # them after capacity freed up must succeed, and the next
            # drain completes every session ever offered.
            for session in refused:
                assert plane.admit(session)["status"] == "ok"
            final = await plane.drain()
            return final["summary"]["sessions_completed"]

        assert asyncio.run(offered_all()) == len(trace)

    def test_admit_validation_fails_fast(self):
        trace = fleet_trace(sessions=4)
        plane = make_plane()
        plane.admit(trace[0])
        with pytest.raises(ServingError, match="already in flight"):
            plane.admit(trace[0])
        with pytest.raises(ServingError, match="unknown model"):
            plane.admit(dataclasses.replace(trace[1], model="gpt-oops"))
        with pytest.raises(ServingError, match="cores"):
            plane.admit(dataclasses.replace(trace[2], rows=40, cols=40))

    def test_protocol_edge_turns_validation_into_error_responses(self):
        trace = fleet_trace(sessions=2)
        plane = make_plane()

        async def duplicate_admit():
            wire = session_to_wire(trace[0])
            first = await plane.handle_message(
                {"op": "admit", "session": wire})
            second = await plane.handle_message(
                {"op": "admit", "session": wire})
            bogus = await plane.handle_message({"op": "reboot"})
            return first, second, bogus

        first, second, bogus = asyncio.run(duplicate_admit())
        assert first["status"] == "ok"
        assert second["status"] == "error"
        assert "already in flight" in second["message"]
        assert bogus["status"] == "error" and "unknown op" in bogus["message"]

    def test_withdraw_from_backlog_and_unknown_id(self):
        trace = fleet_trace(sessions=2)
        plane = make_plane()
        plane.admit(trace[0])
        response = plane.withdraw(trace[0].session_id)
        assert response["source"] == "backlog"
        assert plane.queue_depth() == 0
        with pytest.raises(ServingError):
            plane.withdraw(999_999)

    def test_constructor_validation(self):
        with pytest.raises(ServingError, match="unknown service mode"):
            make_plane(mode="warp")
        with pytest.raises(ServingError, match="max_pending"):
            ControlPlane(chips=2, max_pending=0)
        with pytest.raises(ServingError, match="cycles_per_second"):
            ControlPlane(chips=2, cycles_per_second=0)


class TestWarmRestart:
    def pause_point(self, trace):
        return trace[len(trace) // 2].arrival_cycle

    def test_same_process_restart_byte_equals_oracle(self, tmp_path):
        trace = fleet_trace()
        snap = str(tmp_path / "svc.snapshot.pkl")

        async def split_run():
            plane = make_plane(trace_len=len(trace))
            for session in trace:
                plane.admit(session)
            await plane.drain(until=self.pause_point(trace))
            plane.snapshot_to(snap)
            restored = ControlPlane.restore(snap, autostart=False)
            done = await restored.drain()
            return canonical_json(done["summary"])

        assert asyncio.run(split_run()) == batch_summary(trace)

    def test_fresh_process_restart_byte_equals_oracle(self, tmp_path):
        # The satellite acceptance: admit N -> snapshot -> *kill the
        # process* -> restore in a genuinely fresh interpreter via the
        # CLI -> drain; stdout carries the canonical summary and it
        # byte-equals the never-stopped oracle.
        trace = fleet_trace()
        snap = str(tmp_path / "svc.snapshot.pkl")

        async def first_life():
            plane = make_plane(trace_len=len(trace))
            for session in trace:
                plane.admit(session)
            await plane.drain(until=self.pause_point(trace))
            plane.snapshot_to(snap)

        asyncio.run(first_life())
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        result = subprocess.run(
            [sys.executable, "-m", "repro.serving.service",
             "--restore", snap, "--drain", "--print-summary"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == batch_summary(trace)

    def test_snapshot_restores_service_knobs_and_backlog(self, tmp_path):
        trace = fleet_trace(sessions=6)
        snap = str(tmp_path / "svc.snapshot.pkl")

        async def checkpoint_with_backlog():
            plane = make_plane(max_pending=5, mode="realtime",
                               cycles_per_second=123_456)
            for session in trace[:3]:
                plane.admit(session)
            plane.snapshot_to(snap)  # backlog never folded

        asyncio.run(checkpoint_with_backlog())
        restored = ControlPlane.restore(snap, autostart=False)
        assert restored.mode == "realtime"
        assert restored.cycles_per_second == 123_456
        assert restored.max_pending == 5
        assert restored.admitted_total == 3
        assert [s.session_id for s in restored._backlog] == [
            s.session_id for s in trace[:3]]

    def test_restore_op_refused_on_a_dirty_service(self, tmp_path):
        trace = fleet_trace(sessions=6)
        snap = str(tmp_path / "svc.snapshot.pkl")

        async def restore_twice():
            source = make_plane()
            for session in trace:
                source.admit(session)
            await source.drain(until=self.pause_point(trace))
            source.snapshot_to(snap)
            fresh = make_plane()
            adopted = await fresh.handle_message(
                {"op": "restore", "path": snap})
            dirty = await fresh.handle_message(
                {"op": "restore", "path": snap})
            missing = await fresh.handle_message({"op": "restore"})
            return fresh, adopted, dirty, missing

        fresh, adopted, dirty, missing = asyncio.run(restore_twice())
        assert adopted["status"] == "ok"
        assert adopted["cycle"] == fresh.fleet.sim.now > 0
        assert dirty["status"] == "error"
        assert "restore refused" in dirty["message"]
        assert missing["status"] == "error"
        assert "path" in missing["message"]

    def test_cli_config_file_and_headless_drain(self, tmp_path):
        # The service CLI end to end without sockets: a wire-dict
        # config file + --drain prints the batch-equal summary.
        config_path = tmp_path / "serving.json"
        config_path.write_text(json.dumps(CONFIG.to_dict()))
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        result = subprocess.run(
            [sys.executable, "-m", "repro.serving.service",
             "--chips", "4", "--cores", "16",
             "--config", str(config_path), "--drain", "--print-summary"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert result.returncode == 0, result.stderr
        empty = json.loads(result.stdout)
        assert empty["sessions_completed"] == 0
