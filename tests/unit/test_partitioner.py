"""Unit tests for the pipeline partitioner."""

import pytest

from repro.compiler.partitioner import partition
from repro.errors import CompilationError
from repro.workloads import gpt2, resnet, transformer_block
from repro.workloads.graph import Layer, ModelGraph


def chain_model(loads):
    g = ModelGraph("chain")
    for index, macs in enumerate(loads):
        g.add_layer(Layer(f"l{index}", "fc", macs, macs, 64))
    return g


class TestContiguousSplit:
    def test_one_core_gets_everything(self):
        plan = partition(chain_model([10, 20, 30]), 1)
        assert plan.stage_count == 1
        assert plan.stages[0].layer_indices == [0, 1, 2]

    def test_stage_per_layer_when_cores_match(self):
        plan = partition(chain_model([10, 20, 30]), 3)
        assert plan.stage_count == 3

    def test_min_bottleneck_balance(self):
        # loads 10,10,10,30: with 2 stages best bottleneck is 30 (not 50).
        plan = partition(chain_model([10, 10, 10, 30]), 2)
        assert plan.bottleneck_macs() == 30

    def test_layers_stay_contiguous_and_ordered(self):
        plan = partition(resnet(18), 8)
        covered = [i for stage in plan.stages for i in stage.layer_indices]
        assert covered == list(range(resnet(18).layer_count))

    def test_invalid_inputs(self):
        with pytest.raises(CompilationError):
            partition(chain_model([1]), 0)
        with pytest.raises(CompilationError):
            partition(ModelGraph("empty"), 2)


class TestTensorSplit:
    def test_spare_cores_split_heaviest(self):
        plan = partition(chain_model([100, 10]), 4)
        heavy = plan.stages[0]
        assert heavy.parallelism == 3
        assert plan.stages[1].parallelism == 1
        assert sum(s.parallelism for s in plan.stages) == 4

    def test_macs_per_core_divides(self):
        plan = partition(chain_model([100, 10]), 4)
        assert plan.stages[0].macs_per_core(plan.graph) == pytest.approx(34, abs=1)

    def test_slots_are_consecutive(self):
        plan = partition(chain_model([100, 10]), 4)
        flat = [slot for slots in plan.stage_slots for slot in slots]
        assert flat == list(range(4))


class TestWeightCapacity:
    def test_oversized_stage_gets_extra_cores_first(self):
        g = chain_model([100, 100])
        # Layer weights are 100 bytes each; cap at 60 -> must split.
        plan = partition(g, 4, weight_zone_bytes=60)
        for stage in plan.stages:
            assert stage.weight_bytes_per_core(g) <= 60
            assert not stage.streaming

    def test_unfittable_stage_marked_streaming(self):
        g = chain_model([1000, 10])
        plan = partition(g, 2, weight_zone_bytes=100)
        assert plan.stages[0].streaming
        assert not plan.stages[1].streaming

    def test_gpt2_large_fits_36_cores_sim_scratchpad(self):
        """§6.3.2: GPT2-large occupies exactly 36 cores, weights resident."""
        from repro.arch.config import sim_config

        weight_zone = sim_config(36).core.weight_zone_bytes
        plan = partition(gpt2("large", 256), 36,
                         weight_zone_bytes=weight_zone)
        assert not any(stage.streaming for stage in plan.stages)
        assert sum(s.parallelism for s in plan.stages) == 36

    def test_stage_of_layer(self):
        plan = partition(chain_model([10, 20, 30]), 3)
        assert plan.stage_of_layer(2) == 2
        with pytest.raises(CompilationError):
            plan.stage_of_layer(99)

    def test_small_block_on_many_cores(self):
        plan = partition(transformer_block(128, 16), 4)
        assert sum(s.parallelism for s in plan.stages) == 4
