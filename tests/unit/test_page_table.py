"""Unit tests for the page-table + IOTLB baseline."""

import pytest

from repro.errors import PermissionFault, TranslationFault
from repro.mem.page_table import IoTlb, PageTableEntry, PageTableTranslator


def make_translator(entries=4, **kwargs):
    translator = PageTableTranslator(tlb_entries=entries, **kwargs)
    translator.map_range(0x10000, 0x200000, 64 * 4096)
    return translator


class TestMapping:
    def test_map_creates_one_entry_per_page(self):
        translator = PageTableTranslator()
        pages = translator.map_range(0, 0x100000, 10 * 4096)
        assert pages == 10
        assert translator.entry_count == 10

    def test_map_rounds_partial_page_up(self):
        translator = PageTableTranslator()
        assert translator.map_range(0, 0, 4097) == 2

    def test_unaligned_mapping_rejected(self):
        translator = PageTableTranslator()
        with pytest.raises(TranslationFault):
            translator.map_range(100, 0, 4096)

    def test_unmap_flushes_tlb(self):
        translator = make_translator()
        translator.translate(0x10000)
        translator.unmap_range(0x10000, 64 * 4096)
        with pytest.raises(TranslationFault):
            translator.translate(0x10000)


class TestTranslation:
    def test_offset_preserved(self):
        translator = make_translator()
        result = translator.translate(0x10000 + 123)
        assert result.physical_address == 0x200000 + 123

    def test_contiguous_bytes_to_page_end(self):
        translator = make_translator()
        result = translator.translate(0x10000 + 100)
        assert result.contiguous_bytes == 4096 - 100

    def test_first_access_misses_second_hits(self):
        translator = make_translator()
        first = translator.translate(0x10000)
        second = translator.translate(0x10008)
        assert not first.hit and second.hit
        assert first.cycles > second.cycles

    def test_unmapped_address_faults(self):
        translator = make_translator()
        with pytest.raises(TranslationFault):
            translator.translate(0xDEAD0000)

    def test_permission_fault(self):
        translator = PageTableTranslator()
        translator.map_range(0, 0, 4096, permissions="R")
        with pytest.raises(PermissionFault):
            translator.translate(0, access="W")

    def test_invalid_access_string(self):
        translator = make_translator()
        with pytest.raises(TranslationFault):
            translator.translate(0x10000, access="Q")

    def test_translate_span_one_lookup_per_page(self):
        translator = make_translator()
        results = translator.translate_span(0x10000, 3 * 4096)
        assert len(results) == 3

    def test_translate_span_rejects_empty(self):
        translator = make_translator()
        with pytest.raises(TranslationFault):
            translator.translate_span(0x10000, 0)


class TestTlbBehaviour:
    def test_lru_eviction(self):
        tlb = IoTlb(entries=2)
        a = PageTableEntry(1, 11, "RW")
        b = PageTableEntry(2, 12, "RW")
        c = PageTableEntry(3, 13, "RW")
        tlb.insert(a)
        tlb.insert(b)
        tlb.lookup(1)  # touch a: b becomes LRU
        tlb.insert(c)
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) is not None

    def test_cyclic_working_set_larger_than_tlb_thrashes(self):
        """The Fig 14 pathology: looping over > capacity pages never hits."""
        translator = PageTableTranslator(tlb_entries=4)
        translator.map_range(0, 0, 16 * 4096)
        for _ in range(3):  # three "iterations"
            for page in range(16):
                translator.translate(page * 4096)
        # Only misses (after any warmup, all are capacity misses).
        assert translator.misses == 48

    def test_working_set_within_tlb_hits_across_iterations(self):
        translator = PageTableTranslator(tlb_entries=32)
        translator.map_range(0, 0, 16 * 4096)
        for _ in range(3):
            for page in range(16):
                translator.translate(page * 4096)
        assert translator.misses == 16  # cold only
        assert translator.hits == 32

    def test_invalid_tlb_size(self):
        with pytest.raises(TranslationFault):
            IoTlb(entries=0)

    def test_hit_rate_property(self):
        translator = make_translator()
        translator.translate(0x10000)
        translator.translate(0x10000)
        assert translator.hit_rate == pytest.approx(0.5)
