"""Unit tests for the instruction set and task programs."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import Compute, DmaLoad, Receive, Send
from repro.isa.program import TaskProgram


class TestInstructionValidation:
    def test_dma_load_positive_size(self):
        with pytest.raises(ProgramError):
            DmaLoad(0, 0).validate()

    def test_dma_load_negative_va(self):
        with pytest.raises(ProgramError):
            DmaLoad(-1, 100).validate()

    def test_compute_kinds_and_arity(self):
        Compute("matmul", (4, 4, 4)).validate()
        Compute("conv", (8, 8, 3, 16, 3)).validate()
        Compute("macs", (1000,)).validate()
        with pytest.raises(ProgramError):
            Compute("matmul", (4, 4)).validate()
        with pytest.raises(ProgramError):
            Compute("fft", (4,)).validate()
        with pytest.raises(ProgramError):
            Compute("matmul", (4, 0, 4)).validate()

    def test_macs_zero_allowed(self):
        Compute("macs", (0,)).validate()

    def test_send_receive_validation(self):
        with pytest.raises(ProgramError):
            Send(-1, 100).validate()
        with pytest.raises(ProgramError):
            Send(0, 0).validate()
        with pytest.raises(ProgramError):
            Receive(-2).validate()


class TestTaskProgram:
    def test_builder_chains(self):
        task = TaskProgram("demo")
        task.core(0).dma_load(0x1000, 4096).matmul(16, 16, 16).send(1, 2048, "x")
        task.core(1).receive(0, "x").macs(500)
        assert len(task) == 5
        assert task.cores == [0, 1]
        task.validate()

    def test_unpaired_send_rejected(self):
        task = TaskProgram()
        task.core(0).send(1, 100, "t")
        task.core(1)  # no receive
        with pytest.raises(ProgramError, match="unpaired"):
            task.validate()

    def test_unpaired_receive_rejected(self):
        task = TaskProgram()
        task.core(0).receive(1, "t")
        task.core(1)
        with pytest.raises(ProgramError, match="unpaired"):
            task.validate()

    def test_mismatched_tag_rejected(self):
        task = TaskProgram()
        task.core(0).send(1, 100, "a")
        task.core(1).receive(0, "b")
        with pytest.raises(ProgramError):
            task.validate()

    def test_send_to_core_outside_topology(self):
        task = TaskProgram()
        task.core(0).send(9, 100, "t")
        with pytest.raises(ProgramError):
            task.validate(allowed_cores={0, 1})

    def test_program_on_core_outside_topology(self):
        task = TaskProgram()
        task.core(5).macs(10)
        with pytest.raises(ProgramError, match="outside the topology"):
            task.validate(allowed_cores={0, 1})

    def test_matched_multiset_counts(self):
        """Two sends need two receives, not one."""
        task = TaskProgram()
        task.core(0).send(1, 100, "t").send(1, 100, "t")
        task.core(1).receive(0, "t")
        with pytest.raises(ProgramError):
            task.validate()
        task.core(1).receive(0, "t")
        task.validate()

    def test_byte_accounting(self):
        task = TaskProgram()
        task.core(0).dma_load(0, 1000).send(1, 300, "t")
        task.core(1).receive(0, "t").dma_store(0x100, 500)
        assert task.total_dma_bytes() == 1500
        assert task.total_noc_bytes() == 300

    def test_negative_core_id(self):
        with pytest.raises(ProgramError):
            TaskProgram().core(-1)
