"""Mapping fast path: equivalence with the reference implementation,
pruning accounting, incremental free-set maintenance and the perf
harness (ISSUE 4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape, Topology
from repro.core.ged import EditCosts, best_bijection, bijection_lower_bound
from repro.core.hypervisor import Hypervisor
from repro.core.topology_mapping import TopologyMapper
from repro.core.vnpu import VNpuSpec
from repro.errors import AllocationError, TopologyError


REQUEST_SHAPES = [(1, 2), (2, 2), (2, 3), (3, 3), (1, 4), (3, 4)]


def make_pair(rows=5, cols=5, **kwargs):
    chip = Topology.mesh2d(rows, cols)
    fast = TopologyMapper(chip, cache_size=0, fast_path=True, **kwargs)
    reference = TopologyMapper(chip, cache_size=0, fast_path=False, **kwargs)
    return chip, fast, reference


def occupancy(chip: Topology, pattern: str, rng: random.Random) -> set[int]:
    """Exact / stretched / fragmented allocation patterns."""
    n = chip.node_count
    if pattern == "exact":
        # Empty or one compact corner block: exact placements survive.
        return set() if rng.random() < 0.5 else {0, 1}
    if pattern == "stretched":
        # Scattered singles: connected free set, but warped.
        return set(rng.sample(chip.nodes, n // 3))
    # Fragmented: a cut band plus scatter shatters the free set.
    row = rng.randrange(1, n // 5)
    band = {node for node in chip.nodes
            if chip.coords[node][0] == row}
    return band | set(rng.sample(chip.nodes, n // 4))


def call(mapper, request, allocated):
    try:
        return mapper.map_similar(request, set(allocated),
                                  require_connected=False)
    except AllocationError:
        return None


class TestFastPathEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("pattern", ["exact", "stretched", "fragmented"])
    def test_identical_results_per_pattern(self, seed, pattern):
        """Fast and reference mappers agree on (distance, cores) — and on
        the full vmap — across seeds and occupancy patterns."""
        rng = random.Random(seed)
        chip, fast, reference = make_pair()
        allocated = occupancy(chip, pattern, rng)
        checked = 0
        for shape in REQUEST_SHAPES:
            request = Topology.mesh2d(*shape)
            if request.node_count > chip.node_count - len(allocated):
                continue
            fast_result = call(fast, request, allocated)
            ref_result = call(reference, request, allocated)
            assert (fast_result is None) == (ref_result is None)
            if fast_result is None:
                continue
            checked += 1
            assert fast_result.distance == ref_result.distance
            assert fast_result.physical_cores == ref_result.physical_cores
            assert fast_result.vmap == ref_result.vmap
            assert fast_result.strategy == ref_result.strategy
        assert checked > 0

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000),
           occupied=st.integers(0, 14),
           shape=st.sampled_from(REQUEST_SHAPES))
    def test_identical_results_property(self, seed, occupied, shape):
        rng = random.Random(seed)
        chip, fast, reference = make_pair()
        allocated = set(rng.sample(chip.nodes, occupied))
        request = Topology.mesh2d(*shape)
        if request.node_count > chip.node_count - occupied:
            return
        fast_result = call(fast, request, allocated)
        ref_result = call(reference, request, allocated)
        assert (fast_result is None) == (ref_result is None)
        if fast_result is not None:
            assert fast_result.distance == ref_result.distance
            assert fast_result.vmap == ref_result.vmap

    def test_identical_results_on_coordless_chip(self):
        """A coordinate-less chip that is *structurally* a mesh must not
        reuse chip hops for snake candidates misdetected as 1xN blocks
        (mesh_shape falls back to isomorphism without coords)."""
        mesh = Topology.mesh2d(3, 3)
        chip = Topology(mesh.nodes, mesh.edges)  # structure only, no coords
        fast = TopologyMapper(chip, cache_size=0, fast_path=True)
        reference = TopologyMapper(chip, cache_size=0, fast_path=False)
        ring = Topology([0, 1, 2, 3, 4, 5, 6],
                        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6),
                         (6, 0)])
        star = Topology([0, 1, 2, 3, 4],
                        [(0, 1), (0, 2), (0, 3), (0, 4)])
        for request in (ring, star):
            for allocated in (set(), {4}):
                fast_result = call(fast, request, allocated)
                ref_result = call(reference, request, allocated)
                assert (fast_result is None) == (ref_result is None)
                if fast_result is not None:
                    assert fast_result.distance == ref_result.distance
                    assert fast_result.vmap == ref_result.vmap

    def test_identical_results_with_non_dyadic_costs(self):
        """Exotic float costs (0.1 sums non-associatively) must not flip
        2-opt accept decisions: the fast path falls back to the
        full-recompute refine and stays equivalent."""
        costs = EditCosts(
            node_substitute=lambda a, b: 0.0 if a == b else 0.3,
            edge_delete=lambda t, u, v: 0.1,
            edge_insert=0.1,
        )
        chip = Topology.mesh2d(6, 6)
        fast = TopologyMapper(chip, costs=costs, cache_size=0,
                              fast_path=True)
        reference = TopologyMapper(chip, costs=costs, cache_size=0,
                                   fast_path=False)
        assert not fast._delta_exact
        allocated = {0, 4, 8, 15, 19, 23, 26, 30, 34}
        for shape in ((2, 3), (3, 3), (2, 2)):
            request = Topology.mesh2d(*shape)
            fast_result = call(fast, request, allocated)
            ref_result = call(reference, request, allocated)
            assert fast_result.distance == ref_result.distance
            assert fast_result.vmap == ref_result.vmap

    def test_dyadic_scalar_costs_keep_delta_refine(self):
        chip = Topology.mesh2d(3, 3)
        assert TopologyMapper(chip)._delta_exact
        halves = EditCosts(node_delete=1.5, node_insert=2.0,
                           edge_insert=0.5)
        assert TopologyMapper(chip, costs=halves)._delta_exact
        assert not TopologyMapper(
            chip, costs=EditCosts(edge_insert=0.1))._delta_exact

    def test_equivalence_under_churn_with_notify(self):
        """Interleaved alloc/free churn with incremental maintenance on
        the fast side still matches per-call reference results."""
        rng = random.Random(11)
        chip, fast, reference = make_pair(6, 6)
        allocated: set[int] = set()
        placements: list[list[int]] = []
        for step in range(30):
            if placements and rng.random() < 0.4:
                cores = placements.pop(rng.randrange(len(placements)))
                allocated -= set(cores)
                fast.notify_free(cores)
                continue
            shape = rng.choice(REQUEST_SHAPES)
            request = Topology.mesh2d(*shape)
            if request.node_count > chip.node_count - len(allocated):
                continue
            fast_result = call(fast, request, allocated)
            ref_result = call(reference, request, allocated)
            assert (fast_result is None) == (ref_result is None)
            if fast_result is None:
                continue
            assert fast_result.distance == ref_result.distance
            assert fast_result.vmap == ref_result.vmap
            allocated |= set(fast_result.physical_cores)
            fast.notify_alloc(fast_result.physical_cores)
            placements.append(fast_result.physical_cores)


class TestPruningCounters:
    def test_pruned_plus_refined_accounts_considered(self):
        rng = random.Random(3)
        chip, fast, _ = make_pair(6, 6)
        for _ in range(12):
            allocated = set(rng.sample(chip.nodes, 16))
            call(fast, Topology.mesh2d(3, 3), allocated)
        stats = fast.cache_stats()
        assert stats["candidates_considered"] > 0
        assert (stats["candidates_pruned"] + stats["candidates_refined"]
                == stats["candidates_considered"])

    def test_reference_path_keeps_counters_zero(self):
        rng = random.Random(3)
        chip, _, reference = make_pair(6, 6)
        for _ in range(4):
            allocated = set(rng.sample(chip.nodes, 16))
            call(reference, Topology.mesh2d(3, 3), allocated)
        stats = reference.cache_stats()
        assert stats["candidates_considered"] == 0
        assert stats["candidates_pruned"] == 0
        # The reference 2-opt still reports its objective evaluations.
        assert stats["objective_evaluations"] > 0


class TestLowerBound:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_admissible_against_best_bijection(self, seed):
        """The screen's bound never exceeds the exact Hungarian score."""
        rng = random.Random(seed)
        chip = Topology.mesh2d(5, 5)
        k = rng.randrange(2, 10)
        request = Topology.mesh2d(*rng.choice(
            [(1, k)] + [(r, k // r) for r in range(2, k) if k % r == 0]))
        nodes = [0]
        while len(nodes) < request.node_count:
            frontier = sorted({nbr for node in nodes
                               for nbr in chip.neighbors(node)}
                              - set(nodes))
            nodes.append(rng.choice(frontier))
        candidate = chip.subtopology(nodes)
        bound = bijection_lower_bound(request, candidate)
        distance, _ = best_bijection(request, candidate)
        assert bound <= distance + 1e-9

    def test_size_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            bijection_lower_bound(Topology.mesh2d(2, 2),
                                  Topology.mesh2d(2, 3))

    def test_attribute_excess_priced(self):
        tagged = Topology([0, 1], [(0, 1)], node_attrs={0: "mem", 1: "mem"})
        plain = Topology([5, 6], [(5, 6)])
        assert bijection_lower_bound(tagged, plain) == 2.0
        # And the custom-substitute fallback agrees via Hungarian.
        costs = EditCosts(node_substitute=lambda a, b: 0.0 if a == b else 1.0)
        assert bijection_lower_bound(tagged, plain, costs) == 2.0


class TestIncrementalFreeSet:
    def test_free_topology_cached_until_notify(self):
        chip, fast, _ = make_pair(4, 4)
        first = fast.free_topology(set())
        assert fast.free_topology(set()) is first
        fast.notify_alloc([0, 1])
        second = fast.free_topology({0, 1})
        assert second is first  # same object, updated in place
        assert 0 not in second and 1 not in second
        assert second.node_count == 14
        fast.notify_free([0])
        third = fast.free_topology({1})
        assert 0 in third and 1 not in third
        # Restored node regains its chip adjacency and coordinates.
        assert set(third.neighbors(0)) == {4}  # 1 still allocated
        assert third.coords[0] == chip.coords[0]

    def test_incremental_matches_rebuild(self):
        rng = random.Random(5)
        chip, fast, reference = make_pair(6, 6)
        allocated: set[int] = set()
        for _ in range(40):
            free_nodes = [n for n in chip.nodes if n not in allocated]
            if allocated and rng.random() < 0.45:
                cores = rng.sample(sorted(allocated), 1)
                allocated -= set(cores)
                fast.notify_free(cores)
            elif free_nodes:
                cores = rng.sample(free_nodes,
                                   rng.randrange(1, min(4, len(free_nodes)) + 1))
                allocated |= set(cores)
                fast.notify_alloc(cores)
            incremental = fast.free_topology(set(allocated))
            rebuilt = reference.free_topology(set(allocated))
            assert incremental.nodes == rebuilt.nodes
            assert incremental.edges == rebuilt.edges
            assert incremental.coords == rebuilt.coords

    def test_hypervisor_keeps_tracking_in_sync(self):
        chip = Chip(sim_config(16))
        hypervisor = Hypervisor(chip)
        mapper = hypervisor.mapper
        spec = VNpuSpec("t", MeshShape(2, 2), 16 * MB)
        first = hypervisor.create_vnpu(spec)
        assert mapper._tracked_allocated == hypervisor.allocated_cores
        second = hypervisor.create_vnpu(VNpuSpec("u", MeshShape(1, 3), 8 * MB))
        assert mapper._tracked_allocated == hypervisor.allocated_cores
        hypervisor.destroy_vnpu(first.vmid)
        assert mapper._tracked_allocated == hypervisor.allocated_cores
        hypervisor.migrate_vnpu(second.vmid)  # in-place compaction
        assert mapper._tracked_allocated == hypervisor.allocated_cores

    def test_adhoc_sets_still_correct(self):
        chip, fast, _ = make_pair(4, 4)
        fast.notify_alloc([0, 1, 2])
        adhoc = fast.free_topology({5})
        assert adhoc.node_count == 15 and 5 not in adhoc
        # Repeat probes against the same ad-hoc set hit the one-slot
        # cache (migration trials re-rank against a fixed trial set).
        assert fast.free_topology({5}) is adhoc
        tracked = fast.free_topology({0, 1, 2})
        assert tracked.node_count == 13


class TestCacheKeyAttributes:
    def test_tagged_requests_do_not_collide(self):
        """Structurally-equal requests with different node attrs must not
        share a result-cache entry."""
        chip = Topology.mesh2d(3, 3, name="chip")
        chip.node_attrs[0] = "mem"
        mapper = TopologyMapper(chip)
        plain = Topology.mesh2d(1, 2)
        tagged = Topology.mesh2d(1, 2)
        tagged.node_attrs.update({0: "sa", 1: "sa"})
        key_plain = mapper._cache_key(plain, mapper.free_topology(set()),
                                      True)
        key_tagged = mapper._cache_key(tagged, mapper.free_topology(set()),
                                       True)
        assert key_plain != key_tagged


class TestMapperStatsSurfaces:
    def test_cluster_scheduler_exposes_mapper_stats(self):
        from repro.serving import ClusterScheduler, generate_trace
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip)
        scheduler.serve(generate_trace(3, 10, max_cores=16))
        stats = scheduler.mapper_stats()
        assert stats["hits"] + stats["misses"] > 0
        assert (stats["candidates_pruned"] + stats["candidates_refined"]
                == stats["candidates_considered"])

    def test_fleet_scheduler_sums_per_chip_counters(self):
        from repro.serving import FleetScheduler, generate_fleet_trace
        fleet = FleetScheduler.homogeneous(2, cores=16)
        fleet.serve(generate_fleet_trace(3, 12, chips=2, max_cores=16))
        stats = fleet.mapper_stats()
        per_chip = [fc.hypervisor.mapper.cache_stats()
                    for fc in fleet.chips]
        assert stats["misses"] == sum(s["misses"] for s in per_chip)
        assert stats["free_updates"] == sum(s["free_updates"]
                                            for s in per_chip)
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestTopologyMutationHelpers:
    def test_discard_unknown_node_is_noop(self):
        chip = Topology.mesh2d(2, 2)
        free = chip.subtopology(chip.nodes)
        free._discard_node(99)
        assert free.node_count == 4

    def test_restore_unknown_parent_node_rejected(self):
        chip = Topology.mesh2d(2, 2)
        free = chip.subtopology(chip.nodes)
        with pytest.raises(TopologyError):
            free._restore_node(chip, 99)

    def test_restore_present_node_is_noop(self):
        chip = Topology.mesh2d(2, 2)
        free = chip.subtopology(chip.nodes)
        free._restore_node(chip, 0)
        assert free.node_count == 4

    def test_chip_hops_computed_once_and_correct(self):
        chip, fast, _ = make_pair(3, 3)
        hops = fast.chip_hops
        assert hops[0][8] == chip.hop_distance(0, 8)
        assert fast.chip_hops is hops

    def test_mesh_dims_factorization(self):
        from repro.analysis.perf import mesh_dims
        assert mesh_dims(36) == (6, 6)
        assert mesh_dims(16) == (4, 4)
        assert mesh_dims(12) == (3, 4)
        assert mesh_dims(7) == (1, 7)


class TestPerfHarness:
    def test_small_corpus_replays_identically(self):
        from repro.analysis.perf import record_corpus, replay
        corpus = record_corpus(seed=3, sessions=25, chips=2,
                               cores_per_chip=16)
        assert corpus.map_calls > 0
        fast = replay(corpus, fast_path=True)
        reference = replay(corpus, fast_path=False)
        assert fast.outputs == reference.outputs
        assert fast.outputs_digest() == reference.outputs_digest()
        counters = fast.counters
        assert (counters["candidates_pruned"]
                + counters["candidates_refined"]
                == counters["candidates_considered"])

    def test_corpus_is_deterministic(self):
        from repro.analysis.perf import record_corpus
        one = record_corpus(seed=5, sessions=15, chips=2, cores_per_chip=16)
        two = record_corpus(seed=5, sessions=15, chips=2, cores_per_chip=16)
        assert one.events == two.events
        assert one.digest() == two.digest()

    def test_report_shape(self):
        from repro.analysis.perf import run_mapping_perf
        report = run_mapping_perf(seed=3, sessions=15, chips=2,
                                  cores_per_chip=16)
        deterministic = report["deterministic"]
        assert deterministic["equivalence"]["identical"]
        assert deterministic["equivalence"]["mismatches"] == 0
        assert deterministic["pruning_accounted"]
        assert report["timing"]["fast_seconds"] >= 0.0


class TestHopTableIdentity:
    """The multi-source matrix-BFS hop table must equal the per-node
    Python BFS dict-for-dict (unreachable pairs absent from both)."""

    @staticmethod
    def _random_topology(seed, n, connect_prob=0.25):
        rng = random.Random(seed)
        nodes = list(range(n))
        edges = []
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < connect_prob:
                    edges.append((u, v))
        return Topology(nodes, edges)

    def test_mesh_hop_tables_identical(self):
        for rows, cols in ((1, 1), (2, 3), (4, 4), (3, 7)):
            mesh = Topology.mesh2d(rows, cols)
            assert (TopologyMapper._all_pairs_hops_vectorized(mesh)
                    == TopologyMapper._all_pairs_hops(mesh))

    def test_random_hop_tables_identical(self):
        # Includes sparse draws with isolated nodes and disconnected
        # components — unreachable pairs must be absent, not inf.
        for seed in range(20):
            topology = self._random_topology(seed, 12,
                                             connect_prob=0.08 + seed * 0.02)
            assert (TopologyMapper._all_pairs_hops_vectorized(topology)
                    == TopologyMapper._all_pairs_hops(topology))

    def test_empty_and_singleton(self):
        empty = Topology([], [])
        single = Topology([0], [])
        for topology in (empty, single):
            assert (TopologyMapper._all_pairs_hops_vectorized(topology)
                    == TopologyMapper._all_pairs_hops(topology))
