"""Unit and property tests for the buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.buddy import BuddyAllocator


class TestBasics:
    def test_alloc_rounds_to_power_of_two(self):
        buddy = BuddyAllocator(capacity=1 << 20, min_block=4096)
        block = buddy.alloc(5000)
        assert block.size == 8192

    def test_min_block_granularity(self):
        buddy = BuddyAllocator(capacity=1 << 20, min_block=4096)
        block = buddy.alloc(1)
        assert block.size == 4096

    def test_base_offsets_addresses(self):
        buddy = BuddyAllocator(capacity=1 << 16, base=1 << 30)
        block = buddy.alloc(4096)
        assert block.address >= 1 << 30

    def test_full_capacity_alloc(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        block = buddy.alloc(1 << 16)
        assert block.size == 1 << 16
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(1)

    def test_oversized_request(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(1 << 17)

    def test_non_power_of_two_capacity_rejected(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(capacity=3000)

    def test_zero_alloc_rejected(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        with pytest.raises(AllocationError):
            buddy.alloc(0)

    def test_double_free_rejected(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        block = buddy.alloc(4096)
        buddy.free(block.address)
        with pytest.raises(AllocationError):
            buddy.free(block.address)

    def test_free_unknown_address_rejected(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        with pytest.raises(AllocationError):
            buddy.free(12345)


class TestCoalescing:
    def test_free_restores_full_block(self):
        buddy = BuddyAllocator(capacity=1 << 16, min_block=4096)
        blocks = [buddy.alloc(4096) for _ in range(16)]
        assert buddy.free_bytes == 0
        for block in blocks:
            buddy.free(block.address)
        assert buddy.free_bytes == 1 << 16
        # Coalescing must allow a maximal allocation again.
        assert buddy.alloc(1 << 16).size == 1 << 16

    def test_fragmentation_blocks_large_alloc(self):
        buddy = BuddyAllocator(capacity=1 << 16, min_block=4096)
        blocks = [buddy.alloc(4096) for _ in range(16)]
        # Free every other block: half the bytes free but fragmented.
        for block in blocks[::2]:
            buddy.free(block.address)
        assert buddy.free_bytes == 1 << 15
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(8192)

    def test_free_all_resets(self):
        buddy = BuddyAllocator(capacity=1 << 16)
        buddy.alloc(4096)
        buddy.free_all()
        assert buddy.free_bytes == 1 << 16
        assert buddy.allocated_blocks == []


@settings(max_examples=200, deadline=None)
@given(
    requests=st.lists(
        st.integers(min_value=1, max_value=1 << 15), min_size=1, max_size=40,
    )
)
def test_property_no_overlap_and_alignment(requests):
    """Live blocks never overlap, are size-aligned, and stay in bounds."""
    buddy = BuddyAllocator(capacity=1 << 18, min_block=4096)
    live = []
    for index, size in enumerate(requests):
        try:
            block = buddy.alloc(size)
        except OutOfMemoryError:
            if live:
                buddy.free(live.pop(0).address)
            continue
        live.append(block)
        if index % 3 == 2 and live:
            buddy.free(live.pop(0).address)

    blocks = buddy.allocated_blocks
    for block in blocks:
        assert block.address % block.size == 0
        assert 0 <= block.address and block.end <= 1 << 18
    for first, second in zip(blocks, blocks[1:]):
        assert first.end <= second.address


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 14),
                      min_size=1, max_size=20))
def test_property_alloc_free_all_restores_capacity(sizes):
    """Freeing everything always coalesces back to one max block."""
    buddy = BuddyAllocator(capacity=1 << 18, min_block=4096)
    blocks = []
    for size in sizes:
        try:
            blocks.append(buddy.alloc(size))
        except OutOfMemoryError:
            break
    for block in blocks:
        buddy.free(block.address)
    assert buddy.free_bytes == 1 << 18
    assert buddy.alloc(1 << 18).size == 1 << 18


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 13),
                      min_size=2, max_size=16))
def test_property_accounting_invariant(sizes):
    """allocated + free == capacity at every step."""
    buddy = BuddyAllocator(capacity=1 << 17, min_block=4096)
    for size in sizes:
        try:
            buddy.alloc(size)
        except OutOfMemoryError:
            break
        assert buddy.allocated_bytes + buddy.free_bytes == 1 << 17
