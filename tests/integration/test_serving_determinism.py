"""Replay determinism: identical metric streams for identical seeds.

The benchmark suite's byte-identical-JSON guarantee rests on the
schedulers being pure functions of their trace — these tests enforce
that at tier-1 instead of leaving it to the CI bench smoke. Each case
replays the same seeded trace twice *in-process* (fresh simulator and
chips each time, but shared registries, mapping caches warm in the
second run) and requires the full ``SessionRecord`` and sample streams
to be equal, not just the rounded summaries.
"""

from repro.arch.chip import Chip
from repro.arch.config import sim_config
from repro.core.hypervisor import Hypervisor
from repro.serving import (
    ClusterScheduler,
    DefragPolicy,
    FleetScheduler,
    generate_fleet_trace,
    generate_trace,
)

FREQUENCY = 500_000_000


def run_cluster(policy):
    chip = Chip(sim_config(16))
    scheduler = ClusterScheduler(chip, Hypervisor(chip), policy=policy)
    metrics = scheduler.serve(generate_trace(23, 30, max_cores=16))
    return metrics


def run_fleet(placement, defrag):
    trace = generate_fleet_trace(11, 60, chips=3, max_cores=16,
                                 mean_interarrival_cycles=20_000_000,
                                 fragmentation_heavy=True)
    fleet = FleetScheduler.homogeneous(3, cores=16, placement=placement,
                                       defrag=defrag)
    return fleet.serve(trace)


def assert_identical(first, second):
    assert first.records == second.records
    assert first.samples == second.samples
    assert first.admission_failures == second.admission_failures
    assert first.rejected == second.rejected
    assert first.summary(FREQUENCY) == second.summary(FREQUENCY)


class TestClusterSchedulerDeterminism:
    def test_fcfs_streams_identical(self):
        assert_identical(run_cluster("fcfs"), run_cluster("fcfs"))

    def test_best_fit_streams_identical(self):
        assert_identical(run_cluster("best_fit"), run_cluster("best_fit"))


class TestFleetSchedulerDeterminism:
    def test_least_loaded_with_defrag_identical(self):
        first = run_fleet("least_loaded", DefragPolicy(0.1))
        second = run_fleet("least_loaded", DefragPolicy(0.1))
        assert_identical(first, second)
        assert first.fleet_samples == second.fleet_samples
        assert first.migrations == second.migrations
        assert first.migration_cycles == second.migration_cycles
        # The fragmentation-heavy trace must actually exercise migration,
        # otherwise this test silently stops covering the defrag path.
        assert first.migrations > 0

    def test_best_fit_placement_identical(self):
        assert_identical(run_fleet("best_fit", None),
                         run_fleet("best_fit", None))

    def test_power_of_two_placement_identical(self):
        first = run_fleet("power_of_two", DefragPolicy(0.3))
        second = run_fleet("power_of_two", DefragPolicy(0.3))
        assert_identical(first, second)
        assert first.fleet_samples == second.fleet_samples
