"""Integration tests: full stack, hypervisor through runtime."""

import pytest

from repro import (
    Chip,
    Hypervisor,
    MeshShape,
    VNpuSpec,
    compile_bare_metal,
    compile_model,
    deploy,
    estimate_together,
    fpga_config,
    sim_config,
)
from repro.errors import AllocationError
from repro.workloads import gpt2, resnet, transformer_block

MB = 1 << 20


class TestSingleTenant:
    def test_deploy_resnet(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("r", MeshShape(4, 6), 256 * MB))
        report = deploy(resnet(34), vnpu, chip)
        assert report.fps > 0
        assert report.warmup_cycles > 0
        assert report.interference_fraction == 0.0

    def test_more_cores_more_throughput(self):
        results = {}
        for rows, cols in [(2, 2), (3, 4), (4, 6)]:
            chip = Chip(sim_config(36))
            hv = Hypervisor(chip)
            vnpu = hv.create_vnpu(
                VNpuSpec("r", MeshShape(rows, cols), 256 * MB))
            results[rows * cols] = deploy(resnet(34), vnpu, chip).fps
        assert results[4] < results[12] < results[24]

    def test_virtualization_overhead_under_one_percent(self):
        """§6.3.3: vNPU vs bare metal on the same topology < 1 %."""
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("v", MeshShape(3, 4), 256 * MB))
        model = gpt2("small", 256)
        virt = estimate_together(chip, [compile_model(model, vnpu, chip)])
        bare_chip = Chip(sim_config(36))
        bare = estimate_together(
            bare_chip,
            [compile_bare_metal(model, bare_chip,
                                cores=vnpu.physical_cores)],
        )
        overhead = (virt[model.name].iteration_cycles
                    - bare[model.name].iteration_cycles)
        assert 0 <= overhead / bare[model.name].iteration_cycles < 0.01


class TestMultiTenant:
    def test_two_tenants_no_noc_interference(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        v1 = hv.create_vnpu(VNpuSpec("a", MeshShape(3, 4), 128 * MB))
        v2 = hv.create_vnpu(VNpuSpec("b", MeshShape(3, 4), 128 * MB))
        p1 = compile_model(gpt2("small", 256), v1, chip)
        model_b = resnet(18)
        p2 = compile_model(model_b, v2, chip)
        reports = estimate_together(chip, [p1, p2])
        assert reports["gpt2-small"].interference_fraction == 0.0
        assert reports[model_b.name].interference_fraction == 0.0

    def test_isolated_tenants_have_disjoint_flow_paths(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        v1 = hv.create_vnpu(VNpuSpec("a", MeshShape(3, 4), 128 * MB))
        v2 = hv.create_vnpu(VNpuSpec("b", MeshShape(3, 4), 128 * MB))
        p1 = compile_model(transformer_block(256, 32), v1, chip)
        p2 = compile_model(resnet(18), v2, chip)
        nodes1 = {n for f in p1.flows for n in f.path}
        nodes2 = {n for f in p2.flows for n in f.path}
        assert not nodes1 & nodes2

    def test_capacity_exhaustion(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        hv.create_vnpu(VNpuSpec("a", MeshShape(6, 6), 128 * MB))
        with pytest.raises(AllocationError):
            hv.create_vnpu(VNpuSpec("b", MeshShape(1, 1), 128 * MB))

    def test_destroy_then_reallocate(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        a = hv.create_vnpu(VNpuSpec("a", MeshShape(6, 6), 128 * MB))
        hv.destroy_vnpu(a.vmid)
        b = hv.create_vnpu(VNpuSpec("b", MeshShape(6, 6), 128 * MB))
        assert b.core_count == 36

    def test_many_small_tenants(self):
        """vNPU's 'unlimited instances' vs MIG's 7 (Table 1)."""
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        tenants = [
            hv.create_vnpu(VNpuSpec(f"t{i}", MeshShape(1, 2), 16 * MB))
            for i in range(18)
        ]
        assert hv.core_utilization() == 1.0
        placed = [
            compile_model(transformer_block(64, 16, name=f"blk{i}"), v, chip)
            for i, v in enumerate(tenants)
        ]
        reports = estimate_together(chip, placed)
        assert len(reports) == 18
        assert all(r.fps > 0 for r in reports.values())


class TestMappingStrategiesEndToEnd:
    def test_similar_beats_straightforward_on_fragmented_chip(self):
        """Fig 18's effect, end to end through the hypervisor."""
        occupied_spec = VNpuSpec("blocker", MeshShape(2, 2), 16 * MB)
        results = {}
        for strategy in ("similar", "straightforward"):
            chip = Chip(sim_config(36))
            hv = Hypervisor(chip, strategy=strategy)
            hv.create_vnpu(occupied_spec, strategy="straightforward")
            vnpu = hv.create_vnpu(
                VNpuSpec("tenant", MeshShape(4, 6), 256 * MB))
            results[strategy] = deploy(resnet(34), vnpu, chip).fps
        assert results["similar"] >= results["straightforward"]

    def test_fragmented_strategy_still_runs(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip, strategy="fragmented")
        # Occupy a column to fragment the free region.
        hv.create_vnpu(VNpuSpec("wall", MeshShape(6, 1), 16 * MB),
                       strategy="straightforward")
        vnpu = hv.create_vnpu(VNpuSpec(
            "frag", MeshShape(5, 6), 128 * MB, noc_isolation=False))
        report = deploy(resnet(18), vnpu, chip)
        assert report.fps > 0


class TestAnalyticVsEventSim:
    def test_pipeline_model_tracks_executor(self):
        """The analytic model and the event simulator agree on ordering."""
        from repro.isa.program import TaskProgram
        from repro.runtime.executor import Executor

        def run_pair(macs_a, macs_b):
            chip = Chip(fpga_config())
            program = TaskProgram("pair")
            program.core(0).macs(macs_a).send(1, 4096, "x")
            program.core(1).receive(0, "x").macs(macs_b)
            return Executor(chip).run(program, iterations=4).total_cycles

        light = run_pair(100_000, 100_000)
        heavy = run_pair(1_000_000, 100_000)
        assert heavy > light

    def test_executor_steady_state_matches_model_scale(self):
        """Per-iteration executor cost within 2x of the analytic estimate."""
        from repro.compiler.placement import PhysicalFlow, PlacedTask
        from repro.isa.program import TaskProgram
        from repro.runtime.executor import Executor
        from repro.runtime.pipeline import SteadyStateModel

        macs = 2_000_000
        chip = Chip(fpga_config())
        program = TaskProgram("pipe")
        program.core(0).macs(macs).send(1, 4096, "x")
        program.core(1).receive(0, "x").macs(macs)
        iterations = 8
        total = Executor(chip).run(program, iterations=iterations).total_cycles
        per_iteration = total / iterations

        placed = PlacedTask(
            name="pipe", vmid=None,
            core_macs={0: macs, 1: macs},
            weight_bytes={0: 0, 1: 0},
            flows=[PhysicalFlow(0, 1, 4096, (0, 1), "pipeline")],
        )
        estimate = SteadyStateModel(fpga_config()).estimate([placed])["pipe"]
        ratio = per_iteration / estimate.iteration_cycles
        assert 0.5 < ratio < 2.0
