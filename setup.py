"""Package metadata for the vNPU serving-stack reproduction.

The runtime dependency set is deliberately small: ``numpy`` and
``scipy`` carry the vectorized mapper inner loops (Hungarian reward
matrices via ``scipy.optimize.linear_sum_assignment``, multi-source
BFS hop tables), and ``networkx`` backs the isomorphism checks in
topology mapping. Test/benchmark tooling (pytest, hypothesis, ruff)
stays out of ``install_requires`` — see README "Getting started".
"""

from setuptools import find_packages, setup

setup(
    name="repro-vnpu",
    version="0.6.0",
    description=(
        "Reproduction of an ISCA NPU-virtualization paper grown into an "
        "event-driven multi-tenant vNPU serving stack"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.11",
    install_requires=[
        "networkx>=3.0",
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3.11",
        "Topic :: System :: Emulators",
    ],
)
