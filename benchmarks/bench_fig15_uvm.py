"""Fig 15: vNPU vs UVM-based virtual NPUs, single- and multi-instance.

Each workload runs on a dedicated 4-core virtual NPU (FPGA-scale chip).
Paper shape: single-instance vNPU beats UVM clearly for transformer
blocks (paper: 2.29x) and modestly for ResNet blocks (paper: 5.4 %);
multi-instance UVM suffers global-memory contention (~24 % degradation)
while vNPU instances do not interfere.
"""

from benchmarks.common import Table, once
from repro.arch.chip import Chip
from repro.arch.config import MB, fpga_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.runtime.session import compile_model, estimate_together
from repro.workloads import resnet_block, transformer_block

WORKLOADS = {
    "128dim_16slen": lambda: transformer_block(128, 16),
    "64dim_16slen": lambda: transformer_block(64, 16),
    "16wh_64c": lambda: resnet_block(16, 64),
    "20wh_32c": lambda: resnet_block(20, 32),
}


def single_instance():
    """Each workload alone on its own 4-core vNPU: vNPU vs UVM clocks."""
    results = {}
    for label, build in WORKLOADS.items():
        model = build()
        chip = Chip(fpga_config())
        hv = Hypervisor(chip, min_block=1 << 16)
        vnpu = hv.create_vnpu(VNpuSpec(label, MeshShape(2, 2), 2 * MB))
        placed = compile_model(model, vnpu, chip)
        noc = estimate_together(chip, [placed])[model.name]
        uvm = estimate_together(chip, [placed],
                                uvm_tasks={model.name})[model.name]
        results[label] = (noc.iteration_cycles, uvm.iteration_cycles)
    return results


def multi_instance():
    """Transformer + ResNet co-resident: interference under each scheme."""
    chip = Chip(fpga_config())
    hv = Hypervisor(chip, min_block=1 << 16)
    v1 = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 1 * MB))
    v2 = hv.create_vnpu(VNpuSpec("r", MeshShape(2, 2), 1 * MB))
    transformer = transformer_block(128, 16)
    res = resnet_block(16, 64)
    pt = compile_model(transformer, v1, chip)
    pr = compile_model(res, v2, chip)
    names = {transformer.name, res.name}
    solo_noc = estimate_together(chip, [pt])[transformer.name]
    both_noc = estimate_together(chip, [pt, pr])[transformer.name]
    solo_uvm = estimate_together(chip, [pt],
                                 uvm_tasks=names)[transformer.name]
    both_uvm = estimate_together(chip, [pt, pr],
                                 uvm_tasks=names)[transformer.name]
    return {
        "vNPU": (solo_noc.iteration_cycles, both_noc.iteration_cycles),
        "UVM": (solo_uvm.iteration_cycles, both_uvm.iteration_cycles),
    }


def test_fig15_single_instance(benchmark):
    results = benchmark.pedantic(single_instance, rounds=1, iterations=1)
    if once("fig15a"):
        table = Table("Fig 15 (left) — single instance clocks",
                      ["workload", "vNPU", "UVM", "UVM/vNPU"])
        for label, (noc, uvm) in results.items():
            table.add(label, noc, uvm, f"{uvm / noc:.2f}x")
        table.show()
    for label, (noc, uvm) in results.items():
        assert uvm > noc, label  # vNPU always wins
    transformer_gain = sum(
        results[k][1] / results[k][0]
        for k in ("128dim_16slen", "64dim_16slen")) / 2
    resnet_gain = sum(
        results[k][1] / results[k][0]
        for k in ("16wh_64c", "20wh_32c")) / 2
    # Paper: transformer benefits far more (2.29x) than resnet (1.054x).
    assert transformer_gain > resnet_gain
    assert transformer_gain > 1.3


def test_fig15_multi_instance(benchmark):
    results = benchmark.pedantic(multi_instance, rounds=1, iterations=1)
    if once("fig15b"):
        table = Table("Fig 15 (right) — multi-instance transformer clocks",
                      ["scheme", "solo", "co-resident", "degradation"])
        for scheme, (solo, both) in results.items():
            table.add(scheme, solo, both,
                      f"{100 * (both - solo) / solo:.1f}%")
        table.show()
    vnpu_solo, vnpu_both = results["vNPU"]
    uvm_solo, uvm_both = results["UVM"]
    # vNPU: negligible interference. UVM: double-digit degradation (~24 %).
    assert vnpu_both == vnpu_solo
    assert (uvm_both - uvm_solo) / uvm_solo > 0.10
