"""Fig 13: data broadcast via vRouter vs global-memory synchronization.

Four NPU kernels broadcast their results to 1..4 receiver cores. Paper
shape: vRouter broadcast is ~4x cheaper on average, stays below kernel
execution time (fully overlappable), while UVM-sync broadcast for the
matmul kernel at 1:4 *exceeds* its computation time.
"""

from benchmarks.common import Table, once
from repro.arch import calibration
from repro.arch.compute import ComputeModel
from repro.arch.config import fpga_config
from repro.arch.hbm import GlobalMemory
from repro.arch.noc import NoC
from repro.arch.topology import Topology
from repro.sim import Simulator

CONFIG = fpga_config()

#: kernel name -> (compute description, broadcast payload bytes).
KERNELS = {
    "Conv32hw16c_16oc3k": (("conv", (32, 32, 16, 16, 3)), 32 * 32 * 16),
    "Matmul_128m_128k_128n": (("matmul", (128, 128, 128)), 128 * 128),
    "Conv16hw64c_128oc3k": (("conv", (16, 16, 64, 128, 3)), 16 * 16 * 128),
    "Matmul_64m_512k_32n": (("matmul", (64, 512, 32)), 64 * 32),
}


def kernel_cycles(spec) -> int:
    model = ComputeModel(CONFIG.core)
    kind, params = spec
    if kind == "conv":
        return model.conv2d(*params).cycles
    return model.matmul(*params).cycles


def vrouter_broadcast(payload: int, receivers: int) -> int:
    """Send payload to n receivers over the NoC (vRouter path)."""
    sim = Simulator()
    noc = NoC(sim, Topology.mesh2d(2, 4), CONFIG.noc)
    first = calibration.VROUTER_RT_LOOKUP + calibration.VROUTER_REWRITE
    for receiver in range(1, receivers + 1):
        noc.transfer(0, receiver, payload,
                     first_packet_delay=first,
                     completion_delay=calibration.VROUTER_META_FETCH)
    return sim.run_until_processes_done()


def uvm_broadcast(payload: int, receivers: int) -> int:
    """Write to global memory + n reads + sync flags (UVM path)."""
    sim = Simulator()
    memory = GlobalMemory(sim, CONFIG.memory, CONFIG.frequency_hz)

    def writer_then_readers(sim):
        write = memory.request("write", payload)
        yield write
        yield sim.timeout(calibration.UVM_SYNC_LATENCY)  # flush + flag
        reads = []
        for _ in range(receivers):
            reads.append(memory.request("read", payload))
        yield sim.all_of(reads)
        yield sim.timeout(calibration.UVM_SYNC_LATENCY)  # readers ack

    sim.process(writer_then_readers(sim))
    return sim.run_until_processes_done()


def measure_all():
    rows = {}
    for name, (spec, payload) in KERNELS.items():
        compute = kernel_cycles(spec)
        per_ratio = {}
        for receivers in (1, 2, 3, 4):
            per_ratio[receivers] = (
                vrouter_broadcast(payload, receivers),
                uvm_broadcast(payload, receivers),
            )
        rows[name] = (compute, per_ratio)
    return rows


def test_fig13_broadcast(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    speedups = []
    if once("fig13"):
        table = Table("Fig 13 — broadcast cost (clocks)",
                      ["kernel", "compute", "1:n", "vRouter", "UVM-sync",
                       "UVM/vRouter"])
        for name, (compute, per_ratio) in rows.items():
            for receivers, (vrouter, uvm) in per_ratio.items():
                table.add(name, compute, f"1:{receivers}", vrouter, uvm,
                          f"{uvm / vrouter:.2f}x")
        table.show()
    for name, (compute, per_ratio) in rows.items():
        for receivers, (vrouter, uvm) in per_ratio.items():
            speedups.append(uvm / vrouter)
            # vRouter broadcast must stay below compute (overlappable).
            assert vrouter < compute, (name, receivers)
    mean_speedup = sum(speedups) / len(speedups)
    # Paper: 4.24x average. Our memory model lands lower (~2.4x) but the
    # win must be decisive at every fan-out.
    assert mean_speedup > 2.0
    # Paper: the Matmul UVM broadcast at 1:4 exceeds its compute time
    # (their 16x16-array matmul finishes in 4836 clk; ours takes ~13k, so
    # the crossover shows as UVM-sync consuming a large fraction of
    # compute while vRouter stays fully overlappable).
    compute, per_ratio = rows["Matmul_128m_128k_128n"]
    assert per_ratio[4][1] / compute > 0.4   # UVM: major bubble
    assert per_ratio[4][0] / compute < 0.35  # vRouter: overlappable
