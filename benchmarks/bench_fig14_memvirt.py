"""Fig 14: ML workload throughput under different memory virtualization.

Six models stream their weights from global memory through four
translation schemes. Paper shape (normalized fps, higher is better):

    Physical 1.0 > vChunk (>= ~0.957) > IOTLB32 (~0.908) > IOTLB4 (~0.8)

The mechanism: DMA issues a burst every few cycles across ~6 concurrent
streams; a 4-entry IOTLB thrashes on stream interleaving, a 32-entry
IOTLB misses once per page, and vChunk's range walker resolves misses in
~12 cycles via ``RTT_CUR``/``last_v``.
"""

from benchmarks.common import Table, once
from repro.arch.dma import DmaEngine, TensorAccess
from repro.core.vchunk import RangeTranslator
from repro.mem.address_space import PhysicalTranslator
from repro.mem.page_table import PageTableTranslator
from repro.workloads import (
    alexnet,
    bert_base,
    googlenet,
    mobilenet,
    resnet,
    yolo_lite,
)

MODELS = {
    "AlexNet": alexnet,
    "ResNet": lambda: resnet(50),
    "GoogleNet": googlenet,
    "MobileNet": mobilenet,
    "Yololite": yolo_lite,
    "Transformer": bert_base,
}

PER_CORE_RATE = 4.0  # bytes/cycle of DMA bandwidth per core

#: Cap per-tensor bytes so the burst-level simulation stays fast; the
#: overhead *ratios* are per-byte properties and unaffected by the cap.
TENSOR_CAP = 1 << 20


def model_tensors(model) -> list[TensorAccess]:
    """Weight tensors at contiguous guest VAs (tensor granularity, P-1)."""
    tensors = []
    va = 0x1_0000
    for layer in model.layers:
        if layer.weight_bytes == 0:
            continue
        nbytes = min(layer.weight_bytes, TENSOR_CAP)
        tensors.append(TensorAccess(va, nbytes))
        va += (nbytes + 0xFFF) & ~0xFFF  # page-align each tensor
    return tensors


def make_translators(tensors):
    span = tensors[-1].virtual_address + tensors[-1].nbytes
    span = (span + 0xFFF) & ~0xFFF

    def pages(entries):
        translator = PageTableTranslator(tlb_entries=entries)
        translator.map_range(0, 0, span)
        return translator

    # vChunk maps one RTT entry per tensor (Pattern-1 chunks).
    vchunk = RangeTranslator(tlb_entries=4)
    for tensor in tensors:
        vchunk.map_range(tensor.virtual_address, tensor.virtual_address,
                         tensor.nbytes)
    return {
        "Physical Mem": PhysicalTranslator(),
        "Ours": vchunk,
        "IOTLB32": pages(32),
        "IOTLB4": pages(4),
    }


def measure_model(model) -> dict[str, float]:
    tensors = model_tensors(model)
    cycles = {}
    for name, translator in make_translators(tensors).items():
        engine = DmaEngine(0, translator, bytes_per_cycle=PER_CORE_RATE)
        result = engine.stream_weights(tensors, streams=6, interleave_run=4)
        cycles[name] = result.total_cycles
    baseline = cycles["Physical Mem"]
    return {name: baseline / value for name, value in cycles.items()}


def measure_all():
    return {name: measure_model(build()) for name, build in MODELS.items()}


def test_fig14_memory_virtualization(benchmark):
    grid = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    if once("fig14"):
        table = Table("Fig 14 — normalized fps by translation scheme",
                      ["model", "Physical", "Ours (vChunk)", "IOTLB32",
                       "IOTLB4"])
        for model, row in grid.items():
            table.add(model, row["Physical Mem"], row["Ours"],
                      row["IOTLB32"], row["IOTLB4"])
        table.show()
        means = {
            scheme: sum(row[scheme] for row in grid.values()) / len(grid)
            for scheme in ("Ours", "IOTLB32", "IOTLB4")
        }
        summary = Table("Fig 14 — mean overhead (paper vs measured)",
                        ["scheme", "paper overhead", "measured overhead"])
        summary.add("vChunk", "< 4.3%", f"{100 * (1 - means['Ours']):.1f}%")
        summary.add("IOTLB32", "~9.2%", f"{100 * (1 - means['IOTLB32']):.1f}%")
        summary.add("IOTLB4", "~20%", f"{100 * (1 - means['IOTLB4']):.1f}%")
        summary.show()
    for model, row in grid.items():
        assert row["Physical Mem"] == 1.0
        # Strict ordering: vChunk beats both page-based configurations.
        assert row["Ours"] > row["IOTLB32"] > row["IOTLB4"], model
    means = {
        scheme: sum(row[scheme] for row in grid.values()) / len(grid)
        for scheme in ("Ours", "IOTLB32", "IOTLB4")
    }
    assert 1 - means["Ours"] < 0.06      # paper: < 4.3 %
    assert 0.04 < 1 - means["IOTLB32"] < 0.16  # paper: ~9.2 %
    assert 0.12 < 1 - means["IOTLB4"] < 0.30   # paper: ~20 %
