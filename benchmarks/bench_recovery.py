#!/usr/bin/env python
"""Self-healing shard benchmark: crash matrix + checkpoint overhead.

Replays one seeded bursty trace through the sharded fleet under a
matrix of injected *host-process* faults — worker crash at every
epoch fence, hung workers tripping the watchdog deadline, and a
respawn-budget exhaustion that degrades shards into the coordinator —
and asserts the paper-level recovery invariant: every recovered
summary byte-equals the crash-free ``workers=1`` oracle (modulo the
``recovery`` block that only crashed runs grow). Two artifacts:

- ``BENCH_recovery.json`` — the deterministic one: run configuration,
  the oracle aggregate, and each crash scenario's oracle-match verdict
  plus its recovery counters (respawns, timeouts, replayed epochs,
  checkpoint count, degraded shards). ``checkpoint_bytes`` is
  deliberately excluded — pickle output is not byte-stable across
  interpreter processes, and this artifact must byte-compare equal
  across runs.
- ``BENCH_recovery_timing.json`` — the wall clocks, including the
  checkpoint-cadence overhead: the same crash-free 2-worker run with
  and without fence checkpoints. The gate (overhead <= 15% at the
  default every-fence cadence) enforces on full runs and records its
  ``checkpoint_efficiency`` (no-checkpoint wall / checkpointed wall)
  for the perf-trajectory ledger; quick runs are too short to time
  and self-disable the gate with a recorded reason.

Run:  PYTHONPATH=src python benchmarks/bench_recovery.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.serving import (  # noqa: E402
    DEFAULT_SLO_MIX,
    CrashEvent,
    CrashSchedule,
    ShardedFleetScheduler,
    generate_fleet_trace,
)

#: Fleet-wide mean inter-arrival gap (as in the shard bench).
MEAN_INTERARRIVAL = 20_000_000

#: Checkpoint overhead bar at the default every-fence cadence.
MAX_OVERHEAD = 0.15

#: Wall repeats for the overhead pair (full runs). Single-shot walls on
#: a busy/1-CPU host are noisy enough to swing the ratio across the
#: bar; best-of-N on both sides is the usual de-noising.
OVERHEAD_REPEATS = 5

#: Watchdog deadline / injected hang length for the hang scenario.
#: The hang comfortably exceeds the deadline, so the timeout count is
#: deterministic; the deadline stays small so the scenario is cheap.
HANG_TIMEOUT_SECONDS = 0.25
HANG_SECONDS = 2.0


def run_once(trace, *, chips: int, cores: int, shards: int,
             epoch_cycles: int, workers: int,
             crashes: CrashSchedule | None = None,
             **kwargs) -> tuple[dict, float]:
    """One full replay; returns (summary, wall seconds)."""
    fleet = ShardedFleetScheduler.homogeneous(
        chips, cores=cores, shards=shards, workers=workers,
        epoch_cycles=epoch_cycles, policy="priority",
        elastic="shrink_then_preempt", crashes=crashes,
        respawn_backoff_seconds=0.0, **kwargs)
    fleet.submit(trace)
    # Collect the previous run's garbage now rather than letting the
    # collector amortize it into this run's timed window.
    gc.collect()
    start = time.perf_counter()
    fleet.run()
    wall = time.perf_counter() - start
    return fleet.summary(), wall


def stable_recovery(summary: dict) -> dict | None:
    """The recovery block minus its pickle-sized byte counter."""
    block = summary.get("recovery")
    if block is None:
        return None
    block = dict(block)
    block.pop("checkpoint_bytes", None)
    return block


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=2_000,
                        help="trace length (default: 2000)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--chips", type=int, default=16,
                        help="fleet size (default: 16)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count (default: 4)")
    parser.add_argument("--epoch-cycles", type=int, default=25_000_000,
                        help="fence spacing in cycles (default: 25M)")
    parser.add_argument("--quick", action="store_true",
                        help="8-chip/300-session smoke matrix, no "
                             "overhead gate (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_recovery.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)

    if args.quick:
        sessions, chips = 300, 8
    else:
        sessions, chips = args.sessions, args.chips
    shards = args.shards

    trace = generate_fleet_trace(
        args.seed, sessions, chips=chips, max_cores=args.cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        arrival_process="bursty", slo_mix=DEFAULT_SLO_MIX,
    )
    base = dict(chips=chips, cores=args.cores, shards=shards,
                epoch_cycles=args.epoch_cycles)

    oracle, oracle_wall = run_once(list(trace), workers=1, **base)
    oracle_text = json.dumps(oracle, sort_keys=True)
    epochs = oracle["sharding"]["epochs"]

    # The crash matrix. Every scenario must land byte-on the oracle.
    crash_every_epoch = CrashSchedule(tuple(
        CrashEvent("crash", shard=0, epoch=epoch)
        for epoch in range(epochs)))
    hangs = CrashSchedule(tuple(
        CrashEvent("hang", shard=shard, epoch=epoch,
                   hang_seconds=HANG_SECONDS)
        for shard, epoch in ((0, 1), (1, 3), (2, 5))))
    exhaust = CrashSchedule((
        CrashEvent("crash", shard=2, epoch=1),
        CrashEvent("crash_on_restore", shard=2, count=10),
    ))
    scenarios = (
        ("crash_free_2workers", dict(workers=2)),
        ("no_checkpoints_2workers",
         dict(workers=2, checkpoint_every=None)),
        ("crash_every_epoch",
         dict(workers=2, crashes=crash_every_epoch)),
        ("hang_watchdog",
         dict(workers=2, crashes=hangs,
              epoch_timeout_seconds=HANG_TIMEOUT_SECONDS)),
        ("budget_exhausted_degraded",
         dict(workers=2, crashes=exhaust, respawn_budget=2)),
    )

    results: dict[str, dict] = {}
    walls: dict[str, float] = {"oracle_1worker": oracle_wall}
    mismatched: list[str] = []
    for name, kwargs in scenarios:
        summary, wall = run_once(list(trace), **base, **kwargs)
        recovery = stable_recovery(summary)
        summary.pop("recovery", None)
        matches = json.dumps(summary, sort_keys=True) == oracle_text
        results[name] = {"matches_oracle": matches, "recovery": recovery}
        walls[name] = wall
        if not matches:
            mismatched.append(name)

    payload = {
        "config": {
            "arrival_process": "bursty",
            "bench": "recovery",
            "chips": chips,
            "cores_per_chip": args.cores,
            "elastic": "shrink_then_preempt",
            "epoch_cycles": args.epoch_cycles,
            "hang_seconds": HANG_SECONDS,
            "hang_timeout_seconds": HANG_TIMEOUT_SECONDS,
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "policy": "priority",
            "seed": args.seed,
            "sessions": sessions,
            "shards": shards,
            "slo_mix": {name: weight for name, weight in DEFAULT_SLO_MIX},
        },
        "epochs": epochs,
        "scenarios": results,
        "summary": oracle,
    }
    path = write_bench_json("recovery", payload, directory=args.out)

    # Checkpoint overhead: the two crash-free 2-worker runs differ only
    # in the checkpoint cadence (every fence vs never). The matrix run
    # above already timed each once; full runs repeat the pair and
    # compare best-of-N walls.
    wall_ckpt = walls["crash_free_2workers"]
    wall_free = walls["no_checkpoints_2workers"]
    gate_enforced = not args.quick
    if gate_enforced:
        for _ in range(OVERHEAD_REPEATS - 1):
            _, wall = run_once(list(trace), **base, workers=2)
            wall_ckpt = min(wall_ckpt, wall)
            _, wall = run_once(list(trace), **base, workers=2,
                               checkpoint_every=None)
            wall_free = min(wall_free, wall)
    overhead = wall_ckpt / wall_free - 1.0 if wall_free else 0.0
    efficiency = wall_free / wall_ckpt if wall_ckpt else 1.0
    gate_reason = (f"full run times checkpoint overhead "
                   f"(best of {OVERHEAD_REPEATS})" if gate_enforced
                   else "quick runs are too short to time overhead")
    timing = {
        "gate": {
            "checkpoint_efficiency": round(efficiency, 3),
            "checkpoint_overhead_pct": round(overhead * 100, 1),
            "enforced": gate_enforced,
            "max_overhead_pct": MAX_OVERHEAD * 100,
            "repeats": OVERHEAD_REPEATS if gate_enforced else 1,
            "reason": gate_reason,
        },
        "walls": {name: round(wall, 3)
                  for name, wall in sorted(walls.items())},
    }
    timing_path = write_bench_json("recovery_timing", timing,
                                   directory=args.out)

    table = Table(
        f"Self-healing shards — {sessions} sessions, seed {args.seed}, "
        f"{chips} x {args.cores}-core chips, {shards} shards, "
        f"{epochs} epochs",
        ["scenario", "wall s", "respawns", "timeouts", "replayed",
         "degraded", "aggregate"],
    )
    table.add("oracle_1worker", round(oracle_wall, 3), "-", "-", "-", "-",
              "oracle")
    for name, _ in scenarios:
        recovery = results[name]["recovery"] or {}
        table.add(name, round(walls[name], 3),
                  recovery.get("respawns", 0),
                  recovery.get("timeouts", 0),
                  recovery.get("replayed_epochs", 0),
                  recovery.get("degraded_shards", 0),
                  "identical" if results[name]["matches_oracle"]
                  else "DIVERGES")
    table.show()
    print(f"checkpoint overhead at every-fence cadence: "
          f"{overhead * 100:.1f}% (efficiency {efficiency:.3f})")
    print(f"wrote {path}")
    print(f"wrote {timing_path}")

    if mismatched:
        print(f"FAIL: scenarios {mismatched} diverge from the "
              f"crash-free 1-worker oracle")
        return 1
    if results["crash_every_epoch"]["recovery"]["respawns"] != epochs:
        print("FAIL: crash-at-every-epoch run did not respawn once "
              "per epoch")
        return 1
    if gate_enforced and overhead > MAX_OVERHEAD:
        print(f"FAIL: checkpoint overhead {overhead * 100:.1f}% exceeds "
              f"the {MAX_OVERHEAD * 100:.0f}% bar")
        return 1
    if not gate_enforced:
        print(f"overhead gate not enforced: {gate_reason}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
