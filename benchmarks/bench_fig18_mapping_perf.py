"""Fig 18: end-to-end performance of straightforward vs similar topology
mapping across virtual-NPU sizes.

The chip starts partially occupied (the paper's red nodes). Paper shapes:

- the mapping strategy matters more as the vNPU grows (ResNet34: ~40 %
  better at 28 cores, ~6 % at 11);
- graph-heavy models (ResNet) are more sensitive than uniform chains
  (GPT: zig-zag still reaches ~89 % of the similar mapping).
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, once, write_bench_json  # noqa: E402
from repro.arch.chip import Chip  # noqa: E402
from repro.arch.config import MB, sim_config  # noqa: E402
from repro.arch.topology import MeshShape  # noqa: E402
from repro.core.hypervisor import Hypervisor  # noqa: E402
from repro.core.vnpu import VNpuSpec  # noqa: E402
from repro.runtime.session import compile_model, estimate_together  # noqa: E402
from repro.workloads import gpt2, resnet  # noqa: E402

#: Pre-occupied cores on the 6x6 chip: opposite corner blocks.
OCCUPIED_SHAPE = MeshShape(2, 2)

SIZES = {9: MeshShape(3, 3), 12: MeshShape(3, 4), 16: MeshShape(4, 4),
         24: MeshShape(4, 6), 28: MeshShape(4, 7)}

MODELS = {
    "resnet18": lambda: resnet(18),
    "resnet34": lambda: resnet(34),
    "gpt2-medium": lambda: gpt2("medium", 256),
}


def fps_for(model_builder, cores: int, strategy: str) -> float:
    chip = Chip(sim_config(36))
    hv = Hypervisor(chip)
    # Occupy two opposite corners first (the paper's non-empty start).
    hv.create_vnpu(VNpuSpec("blk1", OCCUPIED_SHAPE, 16 * MB),
                   strategy="straightforward")
    model = model_builder()
    vnpu = hv.create_vnpu(
        VNpuSpec("tenant", SIZES[cores], 512 * MB), strategy=strategy)
    placed = compile_model(model, vnpu, chip)
    return estimate_together(chip, [placed])[model.name].fps


def sweep():
    grid = {}
    for model_name, builder in MODELS.items():
        for cores in SIZES:
            similar = fps_for(builder, cores, "similar")
            zigzag = fps_for(builder, cores, "straightforward")
            grid[(model_name, cores)] = (similar, zigzag)
    return grid


def emit_grid(grid, directory=None):
    """Write the sweep as a comparable ``BENCH_fig18.json`` artifact.

    The simulated fps values are pure functions of the configs, so two
    runs produce byte-identical JSON — the pretty-printed table alone
    left no diffable trajectory across PRs.
    """
    payload = {
        "config": {
            "bench": "fig18",
            "chip_cores": 36,
            "occupied_shape": str(OCCUPIED_SHAPE),
            "sizes": sorted(SIZES),
        },
        "fps": {
            f"{model_name}/{cores}": {
                "ratio": round(similar / zigzag, 6),
                "similar": round(similar, 6),
                "zigzag": round(zigzag, 6),
            }
            for (model_name, cores), (similar, zigzag) in grid.items()
        },
    }
    return write_bench_json("fig18", payload, directory=directory)


def show_grid(grid):
    table = Table("Fig 18 — fps under similar vs straightforward mapping",
                  ["model", "cores", "similar", "zig-zag",
                   "similar/zig-zag"])
    for (model_name, cores), (similar, zigzag) in grid.items():
        table.add(model_name, cores, similar, zigzag,
                  f"{similar / zigzag:.2f}x")
    table.show()


def test_fig18_mapping_performance(benchmark):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    if once("fig18"):
        show_grid(grid)
        emit_grid(grid)

    # Trend 1: similar mapping never loses to zig-zag.
    for key, (similar, zigzag) in grid.items():
        assert similar >= 0.99 * zigzag, key

    # Trend 2: for graph-heavy ResNet the strategy changes throughput by
    # double digits at several sizes (paper: up to ~40 %; our peak gain
    # appears at small/mid vNPU sizes — at 28 cores a single fat
    # activation flow bounds both mappings; see EXPERIMENTS.md).
    resnet_gains = [
        grid[(m, c)][0] / grid[(m, c)][1]
        for m in ("resnet18", "resnet34") for c in SIZES
    ]
    assert max(resnet_gains) > 1.2

    # Trend 3: uniform GPT chains are far less sensitive (paper: zig-zag
    # reaches ~89 % of the similar mapping on average; ours ~100 %).
    gpt_ratio = sum(
        grid[("gpt2-medium", c)][1] / grid[("gpt2-medium", c)][0]
        for c in SIZES) / len(SIZES)
    resnet_mean = sum(
        grid[("resnet18", c)][0] / grid[("resnet18", c)][1]
        for c in SIZES) / len(SIZES)
    gpt_mean_gain = sum(
        grid[("gpt2-medium", c)][0] / grid[("gpt2-medium", c)][1]
        for c in SIZES) / len(SIZES)
    assert gpt_ratio > 0.8
    assert resnet_mean > gpt_mean_gain  # ResNet more mapping-sensitive


if __name__ == "__main__":
    # Standalone path (no pytest-benchmark): sweep + table + artifact.
    result = sweep()
    show_grid(result)
    print(f"wrote {emit_grid(result)}")
