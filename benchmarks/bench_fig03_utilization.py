"""Fig 3: FLOPS utilization of classic ML models on a cloud NPU (TPU).

Paper shape: the majority of traditional models use < 50 % of the TPU
core's FLOPS, and even batch 32 does not reach peak.
"""

from benchmarks.common import Table, once
from repro.analysis.roofline import utilization_table
from repro.workloads import (
    alexnet,
    bert_base,
    dlrm,
    efficientnet_b0,
    resnet,
    resnet_rs,
    retinanet,
)

MODELS = {
    "Bert": bert_base(),
    "DLRM": dlrm(),
    "EfficientNet": efficientnet_b0(),
    "AlexNet": alexnet(),
    "Resnet": resnet(50),
    "RetinaNet": retinanet(),
    "Resnet-RS": resnet_rs(),
}


def compute_grid():
    return utilization_table(MODELS, batches=(1, 8, 32))


def test_fig03_utilization(benchmark):
    grid = benchmark(compute_grid)
    if once("fig03"):
        table = Table("Fig 3 — TPU FLOPS utilization (%)",
                      ["model", "batch 1", "batch 8", "batch 32"])
        for name, per_batch in grid.items():
            table.add(name, *(100 * per_batch[b] for b in (1, 8, 32)))
        table.show()
    # Paper: the majority of models sit below 50 % FLOPS. Our roofline
    # reproduces that for memory/latency-bound models (Bert, DLRM,
    # AlexNet, EfficientNet); the ResNet family lands higher because
    # per-layer systolic-array fill is not modelled (see EXPERIMENTS.md).
    under_half_b1 = sum(1 for g in grid.values() if g[1] < 0.5)
    assert under_half_b1 >= 3
    # Even batch 32 does not reach peak on any model.
    assert all(g[32] < 1.0 for g in grid.values())
    # Batching never hurts utilization in the roofline model.
    assert all(g[32] >= g[1] for g in grid.values())
