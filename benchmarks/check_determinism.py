#!/usr/bin/env python
"""Consolidated benchmark-determinism runner (the single CI gate).

Every benchmark that emits a deterministic ``BENCH_<name>.json`` is
registered here once. The runner executes each bench **twice** with
``--quick`` into two scratch directories, byte-compares the artifacts,
and prints one pass/fail table. Any divergence — or any bench exiting
nonzero (several gate their own acceptance bars) — fails the run.

The 2N bench runs are independent subprocesses, so the runner fans
them out over a thread pool (``--jobs``, default: usable CPUs). The
matrix result is unaffected by the fan-out — every run writes into
its own scratch directory and each comparison only pairs one bench's
own two runs — so the parallel matrix is byte-stable too: the threads
merely wait on subprocesses.

This replaces the previous copy-pasted per-bench shell blocks in
``.github/workflows/ci.yml``: registering a new bench is one line in
``BENCHES`` instead of a new workflow stanza. Wall-clock artifacts
(``BENCH_*_timing.json``) are deliberately not compared.

Run:  PYTHONPATH=src python benchmarks/check_determinism.py \
          [--bench NAME] [--jobs N]
"""

from __future__ import annotations

import argparse
import filecmp
import os
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_HERE = Path(__file__).resolve().parent

#: (bench name, script, deterministic artifacts to byte-compare).
#: Timing artifacts some scripts also write are intentionally absent.
BENCHES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("serving", "bench_serving.py", ("BENCH_serving.json",)),
    ("fleet", "bench_fleet.py", ("BENCH_fleet.json",)),
    ("cost", "bench_cost.py", ("BENCH_cost.json",)),
    ("mapping_perf", "bench_mapping_perf.py", ("BENCH_mapping_perf.json",)),
    ("elastic", "bench_elastic.py", ("BENCH_elastic.json",)),
    ("failover", "bench_failover.py", ("BENCH_failover.json",)),
    ("engine", "bench_engine.py", ("BENCH_engine.json",)),
    ("shard", "bench_shard.py", ("BENCH_shard.json",)),
    ("recovery", "bench_recovery.py", ("BENCH_recovery.json",)),
    ("service", "bench_service.py", ("BENCH_service.json",)),
)


def default_jobs() -> int:
    """Usable CPUs (affinity-aware), the sensible fan-out width."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def run_bench(script: str, out_dir: Path) -> tuple[int, str]:
    """One --quick run of ``script`` writing artifacts into ``out_dir``."""
    result = subprocess.run(
        [sys.executable, str(_HERE / script), "--quick", "--out",
         str(out_dir)],
        capture_output=True,
        text=True,
    )
    return result.returncode, result.stdout + result.stderr


def compare(name: str, artifacts: tuple[str, ...], first: Path,
            second: Path,
            runs: list[tuple[int, str]]) -> tuple[bool, str]:
    """Fold one bench's two finished runs into a verdict."""
    for code, output in runs:
        if code != 0:
            # Surface the bench's own diagnostics (gate messages,
            # tracebacks) — "exit 1" alone is useless in a CI log.
            print(f"--- {name} output (exit {code}) ---")
            print(output.rstrip())
            print(f"--- end {name} output ---")
            return False, f"exit {code}"
    for artifact in artifacts:
        a, b = first / artifact, second / artifact
        if not a.is_file() or not b.is_file():
            return False, f"{artifact} missing"
        if not filecmp.cmp(a, b, shallow=False):
            return False, f"{artifact} diverged"
    return True, "byte-identical"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default=None,
                        help="run only this bench (default: all)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="concurrent bench runs "
                             "(default: usable CPUs)")
    args = parser.parse_args(argv)
    benches = [entry for entry in BENCHES
               if args.bench is None or entry[0] == args.bench]
    if not benches:
        known = ", ".join(name for name, _, _ in BENCHES)
        print(f"unknown bench {args.bench!r}; known: {known}")
        return 2
    jobs = args.jobs if args.jobs else default_jobs()
    if jobs < 1:
        print(f"--jobs must be positive, got {jobs}")
        return 2

    failures = 0
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-determinism-") as scratch:
        scratch_dir = Path(scratch)
        # Fan every (bench, repeat) pair out at once: 2N independent
        # subprocesses, then join per bench in registration order.
        dirs = {name: (scratch_dir / f"{name}-a", scratch_dir / f"{name}-b")
                for name, _, _ in benches}
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = {
                name: [pool.submit(run_bench, script, out_dir)
                       for out_dir in dirs[name]]
                for name, script, _ in benches
            }
            for name, _, artifacts in benches:
                first, second = dirs[name]
                ok, detail = compare(
                    name, artifacts, first, second,
                    [future.result() for future in futures[name]])
                rows.append((name, "PASS" if ok else "FAIL", detail))
                failures += 0 if ok else 1

    width = max(len(name) for name, _, _ in rows)
    print(f"{'bench'.ljust(width)}  result  detail")
    print(f"{'-' * width}  ------  ------")
    for name, verdict, detail in rows:
        print(f"{name.ljust(width)}  {verdict.ljust(6)}  {detail}")
    print(f"\n{len(rows) - failures}/{len(rows)} deterministic")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
