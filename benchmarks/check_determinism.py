#!/usr/bin/env python
"""Consolidated benchmark-determinism runner (the single CI gate).

Every benchmark that emits a deterministic ``BENCH_<name>.json`` is
registered here once. The runner executes each bench **twice** with
``--quick`` into two scratch directories, byte-compares the artifacts,
and prints one pass/fail table. Any divergence — or any bench exiting
nonzero (several gate their own acceptance bars) — fails the run.

This replaces the previous copy-pasted per-bench shell blocks in
``.github/workflows/ci.yml``: registering a new bench is one line in
``BENCHES`` instead of a new workflow stanza. Wall-clock artifacts
(``BENCH_*_timing.json``) are deliberately not compared.

Run:  PYTHONPATH=src python benchmarks/check_determinism.py [--bench NAME]
"""

from __future__ import annotations

import argparse
import filecmp
import subprocess
import sys
import tempfile
from pathlib import Path

_HERE = Path(__file__).resolve().parent

#: (bench name, script, deterministic artifacts to byte-compare).
#: Timing artifacts some scripts also write are intentionally absent.
BENCHES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("serving", "bench_serving.py", ("BENCH_serving.json",)),
    ("fleet", "bench_fleet.py", ("BENCH_fleet.json",)),
    ("cost", "bench_cost.py", ("BENCH_cost.json",)),
    ("mapping_perf", "bench_mapping_perf.py", ("BENCH_mapping_perf.json",)),
    ("elastic", "bench_elastic.py", ("BENCH_elastic.json",)),
    ("failover", "bench_failover.py", ("BENCH_failover.json",)),
    ("engine", "bench_engine.py", ("BENCH_engine.json",)),
)


def run_bench(script: str, out_dir: Path) -> tuple[int, str]:
    """One --quick run of ``script`` writing artifacts into ``out_dir``."""
    result = subprocess.run(
        [sys.executable, str(_HERE / script), "--quick", "--out",
         str(out_dir)],
        capture_output=True,
        text=True,
    )
    return result.returncode, result.stdout + result.stderr


def check(name: str, script: str, artifacts: tuple[str, ...],
          scratch: Path) -> tuple[bool, str]:
    """Run ``script`` twice and byte-compare its artifacts."""
    first, second = scratch / f"{name}-a", scratch / f"{name}-b"
    for out_dir in (first, second):
        code, output = run_bench(script, out_dir)
        if code != 0:
            # Surface the bench's own diagnostics (gate messages,
            # tracebacks) — "exit 1" alone is useless in a CI log.
            print(f"--- {name} output (exit {code}) ---")
            print(output.rstrip())
            print(f"--- end {name} output ---")
            return False, f"exit {code}"
    for artifact in artifacts:
        a, b = first / artifact, second / artifact
        if not a.is_file() or not b.is_file():
            return False, f"{artifact} missing"
        if not filecmp.cmp(a, b, shallow=False):
            return False, f"{artifact} diverged"
    return True, "byte-identical"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default=None,
                        help="run only this bench (default: all)")
    args = parser.parse_args(argv)
    benches = [entry for entry in BENCHES
               if args.bench is None or entry[0] == args.bench]
    if not benches:
        known = ", ".join(name for name, _, _ in BENCHES)
        print(f"unknown bench {args.bench!r}; known: {known}")
        return 2

    failures = 0
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-determinism-") as scratch:
        for name, script, artifacts in benches:
            ok, detail = check(name, script, artifacts, Path(scratch))
            rows.append((name, "PASS" if ok else "FAIL", detail))
            failures += 0 if ok else 1

    width = max(len(name) for name, _, _ in rows)
    print(f"{'bench'.ljust(width)}  result  detail")
    print(f"{'-' * width}  ------  ------")
    for name, verdict, detail in rows:
        print(f"{name.ljust(width)}  {verdict.ljust(6)}  {detail}")
    print(f"\n{len(rows) - failures}/{len(rows)} deterministic")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
