#!/usr/bin/env python
"""Failover benchmark: chip-failure injection on a bursty 8-chip fleet.

Replays one seeded bursty trace with a gold/silver/best-effort SLO mix
across an 8-chip :class:`~repro.serving.fleet.FleetScheduler` four
times — a fault-free baseline, then the same seeded
:class:`~repro.serving.faults.FailureSchedule` of chip/link/HBM
outages drained under each evacuation policy (``evacuate``,
``shrink_to_fit``, ``kill_requeue``) — and emits a canonical JSON
artifact: per-class SLO attainment under faults, killed sessions,
lost service cycles, evacuation counts and costs. Two runs with the
same seed produce byte-identical JSON.

The full run is also a gate: it exits 1 unless ``shrink_to_fit``
*strictly beats* ``kill_requeue`` on gold-tier SLO attainment — the
acceptance bar for the evacuation path (live-migrating gold residents
off a failing chip must preserve attainment that a fail-stop
kill-and-requeue forfeits). ``--quick`` skips the gate (the short
trace is for the CI determinism matrix, not the comparison).

Run:  PYTHONPATH=src python benchmarks/bench_failover.py [--quick]
      (or plainly ``python benchmarks/bench_failover.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.serving import (  # noqa: E402
    DEFAULT_SLO_MIX,
    FleetScheduler,
    generate_failure_schedule,
    generate_fleet_trace,
)

#: Fleet-wide mean inter-arrival gap (the elastic bench's regime).
MEAN_INTERARRIVAL = 20_000_000

#: Mean outage length. Long enough that an un-evacuated chip's worth of
#: residents visibly restarts, short enough that the fleet recovers
#: within the trace.
MEAN_OUTAGE = 50_000_000


def run_failover(trace, schedule, chips: int, cores: int,
                 evacuation: str | None) -> dict:
    # The flagship serving config (priority admission + shrink/preempt
    # elastic relief): with gold arrivals already admitted fast in every
    # variant, the evacuation policies differ by what happens to gold
    # *residents* on a failing chip — migrated live vs killed.
    fleet = FleetScheduler.homogeneous(
        chips, cores=cores, policy="priority",
        elastic="shrink_then_preempt",
        faults=schedule if evacuation else None,
        evacuation=evacuation or "shrink_to_fit")
    metrics = fleet.serve(trace)
    frequency = fleet.chips[0].chip.config.frequency_hz
    return metrics.summary(frequency)


def digest(summary: dict) -> dict:
    """The comparable slice of one run's summary."""
    sliced = {
        "admission_failures": summary["admission_failures"],
        "queue_delay_cycles": summary["queue_delay_cycles"],
        "sessions_completed": summary["sessions_completed"],
        "sessions_rejected": summary["sessions_rejected"],
        "slo": summary["slo"],
    }
    if "faults" in summary:
        sliced["faults"] = summary["faults"]
    return sliced


def gold(summary: dict) -> dict:
    return summary["slo"]["classes"]["gold"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=400,
                        help="trace length (default: 400)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chips", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--failures", type=int, default=12,
                        help="injected faults (default: 12)")
    parser.add_argument("--quick", action="store_true",
                        help="100-session smoke run, no gate (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_failover.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 100 if args.quick else args.sessions

    trace = generate_fleet_trace(
        args.seed, sessions, chips=args.chips, max_cores=args.cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        arrival_process="bursty", slo_mix=DEFAULT_SLO_MIX,
    )
    # Faults land across the arrival span (plus one mean service's worth
    # of tail) so late outages still find residents to drain.
    horizon = trace[-1].arrival_cycle + MEAN_OUTAGE
    schedule = generate_failure_schedule(
        args.seed, chips=args.chips, horizon_cycles=horizon,
        failures=args.failures, mean_outage_cycles=MEAN_OUTAGE,
    )
    variants = {
        "fault_free": run_failover(trace, schedule, args.chips, args.cores,
                                   None),
        "evacuate": run_failover(trace, schedule, args.chips, args.cores,
                                 "evacuate"),
        "shrink_to_fit": run_failover(trace, schedule, args.chips,
                                      args.cores, "shrink_to_fit"),
        "kill_requeue": run_failover(trace, schedule, args.chips,
                                     args.cores, "kill_requeue"),
    }

    shrink_gold = gold(variants["shrink_to_fit"])
    kill_gold = gold(variants["kill_requeue"])
    payload = {
        "config": {
            "arrival_process": "bursty",
            "bench": "failover",
            "chips": args.chips,
            "cores_per_chip": args.cores,
            "elastic": "shrink_then_preempt",
            "failures_requested": args.failures,
            "failures_scheduled": len(schedule),
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "mean_outage_cycles": MEAN_OUTAGE,
            "seed": args.seed,
            "sessions": sessions,
            "slo_mix": {name: weight for name, weight in DEFAULT_SLO_MIX},
        },
        "failover_comparison": {
            "gold_attainment_cost_of_faults": round(
                gold(variants["fault_free"])["attainment"]
                - shrink_gold["attainment"], 6),
            "gold_attainment_saved_by_evacuation": round(
                shrink_gold["attainment"] - kill_gold["attainment"], 6),
            "lost_cycles_saved_by_evacuation": (
                variants["kill_requeue"]["faults"]["lost_service_cycles"]
                - variants["shrink_to_fit"]["faults"]
                ["lost_service_cycles"]),
        },
        "variants": {name: digest(summary)
                     for name, summary in variants.items()},
    }
    path = write_bench_json("failover", payload, directory=args.out)

    table = Table(
        f"Failover — {sessions} sessions, seed {args.seed}, "
        f"{args.chips} x {args.cores}-core chips, "
        f"{len(schedule)} injected faults",
        ["metric", "fault-free", "evacuate", "shrink-to-fit",
         "kill+requeue"],
    )
    order = ("fault_free", "evacuate", "shrink_to_fit", "kill_requeue")
    rows = [
        ("gold attainment", lambda s: gold(s)["attainment"]),
        ("silver attainment",
         lambda s: s["slo"]["classes"]["silver"]["attainment"]),
        ("sessions completed", lambda s: s["sessions_completed"]),
        ("killed sessions",
         lambda s: s.get("faults", {}).get("killed_sessions", 0)),
        ("evacuations",
         lambda s: s.get("faults", {}).get("evacuations", 0)),
        ("lost service cycles",
         lambda s: s.get("faults", {}).get("lost_service_cycles", 0)),
        ("evacuation cycles",
         lambda s: s.get("faults", {}).get("evacuation_cycles", 0)),
    ]
    for label, extract in rows:
        table.add(label, *(extract(variants[name]) for name in order))
    table.show()
    print(f"gold attainment: shrink_to_fit {shrink_gold['attainment']:.3f} "
          f"vs kill_requeue {kill_gold['attainment']:.3f}")
    print(f"wrote {path}")

    if args.quick:
        return 0
    if shrink_gold["attainment"] <= kill_gold["attainment"]:
        print("FAIL: shrink_to_fit does not strictly beat kill_requeue "
              "on gold-tier SLO attainment")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
