#!/usr/bin/env python
"""Cost-engine benchmark: fidelity tiers on a fleet serving trace.

Replays one seeded fragmentation-heavy fleet trace three times — priced
by the ``cached``, ``executor`` and ``analytic`` cost tiers — and emits
two artifacts:

- ``BENCH_cost.json`` — the *deterministic* digest: per-tier serving
  results, cost-cache hit rate, executor-run counts, the cached-tier
  exactness check (max relative error vs. fresh executor-tier pricing
  per cache key, plus the fraction of sessions whose service cycles
  match the executor-tier replay exactly), the analytic-vs-executor
  calibration summary, and the sim-engine micro-benchmark's event
  counts. Byte-identical across runs (the CI determinism check).
- ``BENCH_cost_timing.json`` — wall-clock numbers (trace-replay seconds
  per tier, cached-vs-executor speedup, engine events/second). Host
  timing is inherently non-reproducible, so it lives outside the
  determinism-checked artifact.

Run:  PYTHONPATH=src python benchmarks/bench_cost.py [--quick]
      (or plainly ``python benchmarks/bench_cost.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.analysis.fidelity import (  # noqa: E402
    DEFAULT_CASES,
    calibrate,
    summarize,
)
from repro.arch.config import sim_config  # noqa: E402
from repro.cost import (  # noqa: E402
    CachedCostModel,
    ExecutorCostModel,
    coerce_cost_model,
)
from repro.serving import (  # noqa: E402
    DefragPolicy,
    FleetScheduler,
    generate_fleet_trace,
)
from repro.sim.engine import Simulator  # noqa: E402

#: Twice bench_fleet's inter-arrival gap: executor-tier pricing roughly
#: doubles service times versus the analytic model, so the slower gap
#: keeps the fleet at comparable (non-saturated) load under every tier.
MEAN_INTERARRIVAL = 40_000_000

#: Deadlock-detection horizon: executor-priced sticky tenants can run
#: thousands of measured iterations, so a 500-session trace outlives
#: the engine's 10B-cycle default.
RUN_LIMIT = 1_000_000_000_000

#: Calibration sweep: the harness's standard cases (they all fit the
#: bench's 16-core chips).
CALIBRATION_CASES = DEFAULT_CASES


def run_tier(trace, chips: int, cores: int, threshold: float, cost_model):
    """Serve ``trace`` with one cost tier; returns (metrics, records, wall)."""
    fleet = FleetScheduler.homogeneous(
        chips, cores=cores, cost_model=cost_model,
        defrag=DefragPolicy(fragmentation_threshold=threshold))
    start = time.perf_counter()
    metrics = fleet.serve(trace, limit=RUN_LIMIT)
    wall = time.perf_counter() - start
    frequency = fleet.chips[0].chip.config.frequency_hz
    return metrics.summary(frequency), metrics.records, wall


def digest(summary: dict) -> dict:
    """The comparable slice of one tier's serving summary."""
    return {
        "admission_failures": summary["admission_failures"],
        "makespan_cycles": summary["makespan_cycles"],
        "migrations": summary["fleet"]["migrations"],
        "queue_delay_cycles": summary["queue_delay_cycles"],
        "sessions_completed": summary["sessions_completed"],
        "sessions_rejected": summary["sessions_rejected"],
        "utilization_time_weighted": summary["utilization_time_weighted"],
    }


def cached_exactness(cached_model: CachedCostModel, config) -> dict:
    """Re-price every cache key with a fresh executor tier and compare.

    The cached tier's guarantee: a hit returns exactly what the executor
    tier measures for that key. A fresh ExecutorCostModel reproduces the
    canonical placement deterministically, so any nonzero error here is
    a broken guarantee (or an interpolated entry, reported separately).
    """
    reference = ExecutorCostModel()
    max_error = 0.0
    executor_backed = 0
    for key, (cost, _analytic) in sorted(cached_model._cache.items()):
        if cost.source != "executor":
            continue
        executor_backed += 1
        _config_name, model, rows, cols, memory, klass = key
        truth = reference.measure(config, model, rows, cols, memory, klass)
        for mine, theirs in ((cost.iteration_cycles, truth.iteration_cycles),
                             (cost.warmup_cycles, truth.warmup_cycles)):
            if theirs:
                max_error = max(max_error, abs(mine - theirs) / theirs)
            elif mine:
                max_error = 1.0
    return {
        "executor_backed_keys": executor_backed,
        "max_error_vs_executor": round(max_error, 9),
    }


def session_agreement(cached_records, executor_records) -> dict:
    """Fraction of sessions whose service cycles match across tiers."""
    exec_by_id = {r.session_id: r.service_cycles for r in executor_records}
    matched = sum(
        1 for r in cached_records
        if exec_by_id.get(r.session_id) == r.service_cycles
    )
    total = len(cached_records)
    return {
        "sessions": total,
        "service_cycles_identical": matched,
        "identical_fraction": round(matched / total if total else 0.0, 6),
    }


def engine_microbench() -> tuple[dict, float]:
    """Deterministic hot-loop stress; returns (counts, wall seconds)."""
    processes = 100
    timeouts_per_process = 2_000

    def worker(sim):
        for _ in range(timeouts_per_process):
            yield sim.timeout(1)

    sim = Simulator()
    for _ in range(processes):
        sim.process(worker(sim))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    counts = {
        "events": processes * timeouts_per_process,
        "final_cycle": sim.now,
        "processes": processes,
    }
    return counts, wall


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=500,
                        help="trace length (default: 500)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chips", type=int, default=3,
                        help="fleet size (default: 3)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="defrag fragmentation threshold (default: 0.2)")
    parser.add_argument("--quick", action="store_true",
                        help="60-session smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_cost.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 60 if args.quick else args.sessions

    trace = generate_fleet_trace(
        args.seed, sessions, chips=args.chips, max_cores=args.cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        fragmentation_heavy=True,
    )
    config = sim_config(args.cores)

    cached_model = CachedCostModel()
    cached_summary, cached_records, cached_wall = run_tier(
        trace, args.chips, args.cores, args.threshold, cached_model)
    cache_stats = cached_model.cache_stats()

    executor_model = coerce_cost_model("executor")
    executor_summary, executor_records, executor_wall = run_tier(
        trace, args.chips, args.cores, args.threshold, executor_model)

    analytic_summary, _analytic_records, analytic_wall = run_tier(
        trace, args.chips, args.cores, args.threshold, "analytic")

    exactness = cached_exactness(cached_model, config)
    agreement = session_agreement(cached_records, executor_records)
    calibration_cases = (CALIBRATION_CASES[:3] if args.quick
                         else CALIBRATION_CASES)
    calibration = summarize(calibrate(
        config, cases=calibration_cases,
        classes=("exact", "stretched", "fragmented"),
    ))
    engine_counts, engine_wall = engine_microbench()

    payload = {
        "config": {
            "bench": "cost",
            "chips": args.chips,
            "cores_per_chip": args.cores,
            "defrag_threshold": args.threshold,
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "seed": args.seed,
            "sessions": sessions,
        },
        "cost_cache": {
            "entries": cache_stats["entries"],
            "executor_runs": cache_stats["executor_runs"],
            "hit_rate": round(cache_stats["hit_rate"], 6),
            "hits": cache_stats["hits"],
            "interpolations": cache_stats["interpolations"],
            "misses": cache_stats["misses"],
        },
        "engine": engine_counts,
        "fidelity": {
            "analytic_vs_executor": calibration,
            "cached_vs_executor": {**exactness, **agreement},
        },
        "tiers": {
            "analytic": digest(analytic_summary),
            "cached": digest(cached_summary),
            "executor": digest(executor_summary),
        },
    }
    path = write_bench_json("cost", payload, directory=args.out)

    timing = {
        "analytic_wall_seconds": round(analytic_wall, 3),
        "cached_wall_seconds": round(cached_wall, 3),
        "executor_wall_seconds": round(executor_wall, 3),
        "cached_speedup_vs_executor": round(
            executor_wall / cached_wall if cached_wall else 0.0, 2),
        "engine_events_per_second": round(
            engine_counts["events"] / engine_wall if engine_wall else 0.0),
    }
    timing_dir = Path(args.out) if args.out else Path(__file__).parent
    timing_path = timing_dir / "BENCH_cost_timing.json"
    timing_path.write_text(
        json.dumps(timing, indent=2, sort_keys=True) + "\n")

    table = Table(
        f"Cost tiers — {sessions} sessions, seed {args.seed}, "
        f"{args.chips} x {args.cores}-core chips",
        ["metric", "analytic", "cached", "executor"],
    )
    for label, key in (("queue delay p95 (cycles)", "p95"),
                       ("queue delay p50 (cycles)", "p50")):
        table.add(label,
                  analytic_summary["queue_delay_cycles"][key],
                  cached_summary["queue_delay_cycles"][key],
                  executor_summary["queue_delay_cycles"][key])
    table.add("trace-replay wall (s)", timing["analytic_wall_seconds"],
              timing["cached_wall_seconds"],
              timing["executor_wall_seconds"])
    table.show()
    print(f"cost-cache hit rate: {payload['cost_cache']['hit_rate']:.1%} "
          f"({cache_stats['hits']}/{cache_stats['hits'] + cache_stats['misses']})")
    print(f"cached vs executor: max key error "
          f"{exactness['max_error_vs_executor']}, "
          f"{agreement['identical_fraction']:.1%} of sessions identical")
    print(f"analytic vs executor: max iteration error "
          f"{calibration['iteration_error_max']}")
    print(f"cached speedup vs executor: "
          f"{timing['cached_speedup_vs_executor']}x")
    print(f"engine microbench: {timing['engine_events_per_second']:,} "
          f"events/s")
    print(f"wrote {path} and {timing_path}")

    if not args.quick and payload["cost_cache"]["hit_rate"] < 0.5:
        print("FAIL: cost-cache hit rate below 50% on the full trace",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
