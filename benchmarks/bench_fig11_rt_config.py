"""Fig 11: routing-table configuration overhead vs number of NPU cores.

Paper shape: linear in table size, a few hundred cycles total at 8
cores — negligible against vNPU creation.
"""

from benchmarks.common import Table, once
from repro.arch.controller import NpuController
from repro.arch.topology import Topology
from repro.core.routing_table import StandardRoutingTable

#: Paper Fig 11 y-axis at 8 cores (approximate): ~300 clocks.
PAPER_CLOCKS_AT_8 = 300


def configure_all_sizes():
    results = {}
    for cores in range(1, 9):
        controller = NpuController(Topology.mesh2d(2, 4))
        table = StandardRoutingTable(1, {v: v for v in range(cores)})
        results[cores] = controller.install_routing_table(
            table, hyper_mode=True)
    return results


def test_fig11_rt_config(benchmark):
    results = benchmark(configure_all_sizes)
    if once("fig11"):
        table = Table("Fig 11 — routing-table configuration (clocks)",
                      ["cores", "measured clocks"])
        for cores, clocks in results.items():
            table.add(cores, clocks)
        table.show()
        print(f"paper @8 cores: ~{PAPER_CLOCKS_AT_8} clk; "
              f"measured: {results[8]} clk")
    # Linear growth, a few hundred cycles at 8 cores.
    deltas = [results[n + 1] - results[n] for n in range(1, 8)]
    assert len(set(deltas)) == 1  # perfectly linear
    assert abs(results[8] - PAPER_CLOCKS_AT_8) / PAPER_CLOCKS_AT_8 < 0.25
