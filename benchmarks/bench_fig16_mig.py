"""Fig 16: vNPU vs MIG-based virtualization (performance + warm-up), and
the bare-metal overhead check of §6.3.3.

Two tenant mixes, as in the paper:

- 36-core chip: GPT2-small (12 cores) + ResNet34 (24 cores). MIG's two
  fixed 18-core partitions waste 6 cores under GPT2-small and force
  ResNet34 into time-division multiplexing.
- 48-core chip: GPT2-small (12) + GPT2-large (36). MIG's 24-core halves
  TDM GPT2-large's 36 virtual cores onto 24 physical ones — the paper's
  up-to-1.92x loss; vNPU allocates exactly 12 + 36.
"""

from benchmarks.common import Table, once
from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape, Topology
from repro.baselines.mig import mig_partitions, place_on_mig
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.runtime.session import (
    compile_bare_metal,
    compile_model,
    estimate_together,
)
from repro.workloads import gpt2, resnet

SEQ = 256


def scenario(chip_cores: int, second_model, second_name: str,
             second_shape: MeshShape):
    config = sim_config(chip_cores)
    weight_zone = config.core.weight_zone_bytes

    # --- vNPU: flexible allocation of exactly the requested cores.
    chip = Chip(config)
    hv = Hypervisor(chip)
    v_small = hv.create_vnpu(VNpuSpec("gpt2-small", MeshShape(3, 4),
                                      256 * MB))
    v_second = hv.create_vnpu(VNpuSpec(second_name, second_shape, 512 * MB))
    placed_small = compile_model(gpt2("small", SEQ), v_small, chip)
    placed_second = compile_model(second_model, v_second, chip)
    vnpu_reports = estimate_together(chip, [placed_small, placed_second])

    # --- MIG: two fixed half-chip partitions.
    mig_chip = Chip(config)
    partitions = mig_partitions(config, 2)
    mapped_small = map_stages(
        partition(gpt2("small", SEQ), 12, weight_zone_bytes=weight_zone),
        Topology.mesh2d(3, 4))
    mapped_second = map_stages(
        partition(second_model, second_shape.node_count,
                  weight_zone_bytes=weight_zone),
        Topology.mesh2d(second_shape.rows, second_shape.cols))
    mig_small = place_on_mig(mapped_small, partitions[0], mig_chip.topology)
    mig_second = place_on_mig(mapped_second, partitions[1], mig_chip.topology)
    mig_reports = estimate_together(mig_chip, [mig_small, mig_second])

    return vnpu_reports, mig_reports, (v_small, v_second)


def run_both_scenarios():
    res34 = resnet(34)
    gpt_l = gpt2("large", SEQ)
    return {
        "36 cores (gpt2-s + resnet34)": scenario(
            36, res34, "resnet34", MeshShape(4, 6)) + (res34.name,),
        "48 cores (gpt2-s + gpt2-l)": scenario(
            48, gpt_l, "gpt2-large", MeshShape(6, 6)) + (gpt_l.name,),
    }


def test_fig16_vnpu_vs_mig(benchmark):
    scenarios = benchmark.pedantic(run_both_scenarios, rounds=1, iterations=1)
    if once("fig16"):
        table = Table("Fig 16 — throughput (fps) and warm-up (clk)",
                      ["scenario", "task", "vNPU fps", "MIG fps", "speedup",
                       "vNPU warmup", "MIG warmup"])
        for label, (vnpu, mig, _vnpus, second) in scenarios.items():
            for task in ("gpt2-small", second):
                table.add(label, task, vnpu[task].fps, mig[task].fps,
                          f"{vnpu[task].fps / mig[task].fps:.2f}x",
                          vnpu[task].warmup_cycles, mig[task].warmup_cycles)
        table.show()

    vnpu36, mig36, _, second36 = scenarios["36 cores (gpt2-s + resnet34)"]
    vnpu48, mig48, _, second48 = scenarios["48 cores (gpt2-s + gpt2-l)"]
    resnet_speedup = vnpu36[second36].fps / mig36[second36].fps
    gpt_speedup = vnpu48[second48].fps / mig48[second48].fps
    # Paper: up to 1.92x for the transformer (TDM on 24 of 36 cores) and
    # 1.28x on average for ResNet (TDM partially hidden by imbalance).
    assert 1.5 < gpt_speedup < 2.3
    assert 1.1 < resnet_speedup < 2.1
    assert gpt_speedup > resnet_speedup
    # GPT2-small fits both schemes' partitions: no slowdown either way.
    assert vnpu48["gpt2-small"].fps >= 0.99 * mig48["gpt2-small"].fps


def test_fig16_utilization(benchmark):
    """vNPU's allocation-side win: MIG strands cores, vNPU does not."""
    def measure():
        config = sim_config(36)
        chip = Chip(config)
        hv = Hypervisor(chip)
        hv.create_vnpu(VNpuSpec("gpt2-small", MeshShape(3, 4), 128 * MB))
        used_vnpu = 12
        partitions = mig_partitions(config, 2)
        used_mig = partitions[0].core_count  # whole partition held
        return used_vnpu, used_mig

    used_vnpu, used_mig = benchmark(measure)
    assert used_vnpu == 12
    assert used_mig == 18  # 6 cores stranded (paper: up to 50 % waste)


def test_fig16_bare_metal_overhead(benchmark):
    """§6.3.3: virtualization costs < 1 % end to end."""
    def measure():
        model = gpt2("small", SEQ)
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        vnpu = hv.create_vnpu(VNpuSpec("v", MeshShape(3, 4), 256 * MB))
        virt = estimate_together(
            chip, [compile_model(model, vnpu, chip)])[model.name]
        bare_chip = Chip(sim_config(36))
        bare = estimate_together(
            bare_chip,
            [compile_bare_metal(model, bare_chip, cores=vnpu.physical_cores)],
        )[model.name]
        return virt.iteration_cycles, bare.iteration_cycles

    virt, bare = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = (virt - bare) / bare
    if once("fig16c"):
        print(f"\nbare-metal {bare} clk vs vNPU {virt} clk "
              f"-> overhead {100 * overhead:.3f}% (paper: < 1%)")
    assert 0 <= overhead < 0.01
