"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these isolate the contribution of individual
mechanisms: the vChunk ``last_v`` loop hint, MIG's load-aware TDM
binding, and confined (direction-table) NoC routing.
"""

from benchmarks.common import Table, once
from repro.arch.chip import Chip
from repro.arch.config import sim_config
from repro.arch.topology import Topology
from repro.baselines.mig import mig_partitions, place_on_mig
from repro.baselines.tdm import bind_tdm, tdm_factor
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.core.routing_table import StandardRoutingTable
from repro.core.vchunk import RangeTranslationTable, RttEntry
from repro.core.vrouter import NocVRouter
from repro.runtime.session import estimate_together
from repro.workloads import resnet


# -- ablation 1: the last_v loop hint --------------------------------------

def walk_iterations(use_last_v: bool, entries: int = 16,
                    iterations: int = 8) -> int:
    """Total walk cycles for a looping access pattern over all ranges."""
    table = RangeTranslationTable(
        [RttEntry(i * 0x10000, i * 0x100000, 0x10000)
         for i in range(entries)],
        use_last_v=use_last_v,
    )
    total = 0
    for _ in range(iterations):
        for i in range(entries):
            _, cycles = table.walk(i * 0x10000 + 8)
            total += cycles
    return total


def test_ablation_last_v(benchmark):
    with_hint = benchmark.pedantic(
        lambda: walk_iterations(True), rounds=1, iterations=1)
    without_hint = walk_iterations(False)
    if once("abl-lastv"):
        table = Table("Ablation — vChunk last_v hint (walk cycles)",
                      ["configuration", "cycles", "vs with-hint"])
        table.add("with last_v", with_hint, "1.00x")
        table.add("without last_v", without_hint,
                  f"{without_hint / with_hint:.2f}x")
        table.show()
    # The hint only matters at the iteration-wrap (jump back to entry 0);
    # sequential advance is already cheap. Wraps are where page-style
    # translation pays a full scan.
    assert without_hint > with_hint


# -- ablation 2: load-aware TDM binding --------------------------------------

def mig_resnet_fps(load_aware: bool) -> float:
    config = sim_config(36)
    chip = Chip(config)
    partitions = mig_partitions(config, 2)
    model = resnet(34)
    mapped = map_stages(
        partition(model, 24,
                  weight_zone_bytes=config.core.weight_zone_bytes),
        Topology.mesh2d(4, 6))
    placed = place_on_mig(mapped, partitions[0], chip.topology,
                          load_aware_tdm=load_aware)
    return estimate_together(chip, [placed])[model.name].fps


def test_ablation_load_aware_tdm(benchmark):
    aware = benchmark.pedantic(
        lambda: mig_resnet_fps(True), rounds=1, iterations=1)
    naive = mig_resnet_fps(False)
    if once("abl-tdm"):
        table = Table("Ablation — MIG TDM binding policy (ResNet34 fps)",
                      ["policy", "fps"])
        table.add("load-aware (LPT)", aware)
        table.add("round-robin", naive)
        table.show()
    # The binding policy trades *compute balance* against *flow locality*:
    # LPT provably minimizes the worst per-core compute (tdm_factor below)
    # but scatters pipeline-adjacent virtual cores, stretching flows;
    # round-robin keeps the pipeline snake mostly local. Both outcomes are
    # valid operating points — the paper's "bind high-load with low-load"
    # mitigation corresponds to the compute-balance axis.
    assert aware > 0 and naive > 0

    loads = {0: 100, 1: 95, 2: 10, 3: 5}
    lpt = bind_tdm(loads, [7, 8])
    rr = bind_tdm(loads, [7, 8], load_aware=False)
    assert tdm_factor(lpt, loads) <= tdm_factor(rr, loads)


# -- ablation 3: confined routing vs default DOR -----------------------------

def interference_counts():
    """Irregular vNPU on a 3x4 chip: DOR leaks, directions confine."""
    chip = Topology.mesh2d(3, 4)
    table = StandardRoutingTable(2, {0: 3, 1: 7, 2: 11, 3: 10})
    confined = NocVRouter(chip, table, mode="confined")
    dor = NocVRouter(chip, table, mode="dor")
    pairs = [(a, b) for a in range(4) for b in range(4) if a != b]
    dor_leaks = sum(dor.would_interfere(a, b) for a, b in pairs)
    confined_leaks = 0
    for a, b in pairs:
        route = confined.resolve(a, b)
        if route.path is not None:
            confined_leaks += sum(
                1 for node in route.path if node not in confined.owned)
    return dor_leaks, confined_leaks, len(pairs)


def test_ablation_confined_routing(benchmark):
    dor_leaks, confined_leaks, pairs = benchmark(interference_counts)
    if once("abl-noc"):
        table = Table("Ablation — NoC routing for an irregular vNPU",
                      ["policy", "leaking pairs", "of"])
        table.add("default DOR", dor_leaks, pairs)
        table.add("confined (direction table)", confined_leaks, pairs)
        table.show()
    assert dor_leaks > 0          # the paper's NoC interference exists
    assert confined_leaks == 0    # and directions eliminate it


# -- ablation 4: MIG partition count ------------------------------------------

def test_ablation_mig_granularity(benchmark):
    """Finer MIG partitions strand fewer cores but cap tenant size."""
    def measure():
        config = sim_config(36)
        halves = mig_partitions(config, 2)
        thirds = mig_partitions(config, 3)
        return halves[0].core_count, thirds[0].core_count

    half, third = benchmark(measure)
    assert half == 18 and third == 12
    # A 12-core tenant wastes 6 cores on halves, none on thirds...
    assert half - 12 == 6 and third - 12 == 0
    # ...but a 24-core tenant would TDM 2x on thirds vs fit exactly never.
    assert 24 > third
