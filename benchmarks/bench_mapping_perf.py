#!/usr/bin/env python
"""Mapping fast-path benchmark: fast vs reference mapper on a pinned
fleet-churn corpus.

Replays the :mod:`repro.analysis.perf` corpus — best-fit probe churn
from a fragmentation-heavy fleet trace — through the similarity mapper
twice (fast path on / reference implementation) and emits two
artifacts, mirroring the ``BENCH_cost`` split:

- ``BENCH_mapping_perf.json`` — the *deterministic* digest: corpus
  identity, fast-path operation counters (candidates considered vs
  pruned vs refined, objective evaluations, free-set rebuilds vs
  incremental updates), the pruning accounting check, and the
  output-equality verdict against the reference mapper. Byte-identical
  across runs (the CI determinism check).
- ``BENCH_mapping_perf_timing.json`` — wall-clock seconds per
  implementation and the speedup. Host timing is inherently
  non-reproducible, so it lives outside the determinism-checked
  artifact.

Exits non-zero when the fast path's outputs diverge from the reference
mapper or the pruning counters fail to account for every candidate —
those are correctness regressions, not noise.

Run:  PYTHONPATH=src python benchmarks/bench_mapping_perf.py [--quick]
      (or plainly ``python benchmarks/bench_mapping_perf.py`` — the
      script bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.analysis.perf import run_mapping_perf  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=500,
                        help="fleet trace length (default: 500)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chips", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--cores", type=int, default=36,
                        help="cores per chip (default: 36)")
    parser.add_argument("--quick", action="store_true",
                        help="120-session, 4-chip smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_mapping_perf*.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 120 if args.quick else args.sessions
    chips = 4 if args.quick else args.chips

    report = run_mapping_perf(seed=args.seed, sessions=sessions,
                              chips=chips, cores_per_chip=args.cores)
    deterministic = report["deterministic"]
    timing = report["timing"]
    payload = {
        "config": {
            "bench": "mapping_perf",
            "chips": chips,
            "cores_per_chip": args.cores,
            "seed": args.seed,
            "sessions": sessions,
        },
        **deterministic,
    }
    path = write_bench_json("mapping_perf", payload, directory=args.out)
    timing_path = write_bench_json("mapping_perf_timing", {
        "config": payload["config"],
        "timing": timing,
    }, directory=args.out)

    fast = deterministic["fast"]
    equivalence = deterministic["equivalence"]
    table = Table(
        "Mapping fast path — corpus replay vs reference implementation",
        ["metric", "value"],
    )
    table.add("map calls", equivalence["map_calls"])
    table.add("outputs identical", equivalence["identical"])
    table.add("candidates considered", fast["candidates_considered"])
    table.add("candidates pruned", fast["candidates_pruned"])
    table.add("candidates refined", fast["candidates_refined"])
    table.add("objective evals (fast)", fast["objective_evaluations"])
    table.add("objective evals (reference)",
              deterministic["reference"]["objective_evaluations"])
    table.add("free-set rebuilds (fast)", fast["free_rebuilds"])
    table.add("free-set incremental updates", fast["free_updates"])
    table.add("wall fast (s)", timing["fast_seconds"])
    table.add("wall reference (s)", timing["reference_seconds"])
    table.add("speedup", f"{timing['speedup']}x")
    table.show()
    print(f"wrote {path}")
    print(f"wrote {timing_path}")

    if not equivalence["identical"]:
        print(f"FAIL: fast path diverged from the reference mapper on "
              f"{equivalence['mismatches']} of "
              f"{equivalence['map_calls']} calls")
        return 1
    if not deterministic["pruning_accounted"]:
        print("FAIL: pruned + refined != considered")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
