"""Figs 8, 9 and 17: topology-mapping case studies.

- Fig 8: two 3x3 requests on a 5x5 chip — exact mapping locks in after
  the first; similar mapping recovers the second from the L-shaped rest.
- Fig 9: a concrete topology-edit-distance computation.
- Fig 17: straightforward vs similar mapping on a partially occupied
  chip (corner blocks already allocated).
"""


from benchmarks.common import Table, once
from repro.arch.topology import Topology
from repro.core.ged import exact_ged
from repro.core.topology_mapping import TopologyMapper
from repro.errors import TopologyLockIn


def fig8_scenario():
    chip = Topology.mesh2d(5, 5)
    mapper = TopologyMapper(chip)
    request = Topology.mesh2d(3, 3)
    first = mapper.map_exact(request)
    allocated = set(first.physical_cores)
    try:
        mapper.map_exact(request, allocated=allocated)
        locked_in = False
    except TopologyLockIn:
        locked_in = True
    second = mapper.map_similar(request, allocated=allocated)
    return first, locked_in, second


def fig17_scenario():
    """Corners pre-occupied; place a 3x3 tenant both ways."""
    chip = Topology.mesh2d(5, 5)
    mapper = TopologyMapper(chip)
    occupied = {0, 1, 5, 6, 18, 19, 23, 24}  # upper-left + bottom-right
    request = Topology.mesh2d(3, 3)
    similar = mapper.map_similar(request, allocated=occupied)
    straightforward = mapper.map_straightforward(request, allocated=occupied)

    def mean_hops(result):
        hops = [
            chip.hop_distance(result.vmap[u], result.vmap[v])
            for u, v in request.edges
        ]
        return sum(hops) / len(hops)

    return {
        "similar": (similar, mean_hops(similar)),
        "straightforward": (straightforward, mean_hops(straightforward)),
    }


def test_fig8_lock_in_and_recovery(benchmark):
    first, locked_in, second = benchmark.pedantic(
        fig8_scenario, rounds=1, iterations=1)
    if once("fig8"):
        table = Table("Fig 8 — two 3x3 vNPUs on a 5x5 chip",
                      ["vNPU", "strategy", "physical cores", "TED"])
        table.add("vNPU1", first.strategy, str(first.physical_cores),
                  first.distance)
        table.add("vNPU2", second.strategy, str(second.physical_cores),
                  second.distance)
        table.show()
        print("exact mapping for vNPU2: TopologyLockIn "
              f"(paper: ~64% of cores wasted) -> {locked_in}")
    assert first.is_exact
    assert locked_in  # the paper's topology lock-in
    assert second.connected and len(second.vmap) == 9
    assert 0 < second.distance <= 8


def test_fig9_edit_distance_example(benchmark):
    """A 4-operation edit: 2 edge deletions, 1 insertion, 1 substitution."""
    t1 = Topology(range(5), [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)],
                  node_attrs={4: "sa"})
    t2 = Topology(range(5), [(0, 1), (0, 2), (0, 3), (0, 4)],
                  node_attrs={4: "vu"})
    distance = benchmark(lambda: exact_ged(t1, t2))
    if once("fig9"):
        print(f"\nFig 9 — TED(T1, T2) = {distance} (paper example: 4)")
    assert distance == 4.0


def test_fig17_strategies(benchmark):
    results = benchmark.pedantic(fig17_scenario, rounds=1, iterations=1)
    if once("fig17"):
        table = Table("Fig 17 — mapping strategies on an occupied 5x5 chip",
                      ["strategy", "TED", "mean edge hops", "cores"])
        for name, (result, hops) in results.items():
            table.add(name, result.distance, hops,
                      str(result.physical_cores))
        table.show()
    similar, similar_hops = results["similar"]
    straightforward, zz_hops = results["straightforward"]
    assert similar.distance <= straightforward.distance
    assert similar_hops <= zz_hops
    # Both respect R-1 and avoid occupied cores.
    occupied = {0, 1, 5, 6, 18, 19, 23, 24}
    for result, _ in results.values():
        assert len(result.vmap) == 9
        assert not set(result.physical_cores) & occupied
