"""Table 3: NoC data transfer with and without the vRouter.

Paper numbers (clocks) for 2048-byte routing packets over one hop:

    packets   Send   Receive   vSend   vReceive
        2      309      311      342       372
       10     1430     1432     1432      1492
       20     2810     2818     2822      2894
       30     4236     4240     4240      4308

Shape to reproduce: virtualization adds a small constant (routing-table
lookup + meta-zone fetch) that amortizes to ~1-2 % as transfers grow.
"""

import pytest

from benchmarks.common import Table, once
from repro.arch import calibration
from repro.arch.config import NoCConfig
from repro.arch.noc import NoC
from repro.arch.topology import Topology
from repro.sim import Simulator

PAPER = {
    2: (309, 311, 342, 372),
    10: (1430, 1432, 1432, 1492),
    20: (2810, 2818, 2822, 2894),
    30: (4236, 4240, 4240, 4308),
}


def run_transfer(packets: int, virtualized: bool) -> tuple[int, int]:
    """Returns (send_complete, receive_complete) clocks for one transfer."""
    sim = Simulator()
    noc = NoC(sim, Topology.mesh2d(1, 2), NoCConfig())
    first_delay = completion = 0
    if virtualized:
        first_delay = (calibration.VROUTER_RT_LOOKUP
                       + calibration.VROUTER_REWRITE)
        completion = calibration.VROUTER_META_FETCH
    proc = noc.transfer(0, 1, 2048 * packets,
                        first_packet_delay=first_delay,
                        completion_delay=completion)
    sim.run_until_processes_done()
    record = proc.value
    send_done = record.end_cycle - (completion if virtualized else 0)
    return send_done, record.end_cycle + 2  # receive drains 2 clk later


def measure_all():
    rows = {}
    for packets in PAPER:
        send, receive = run_transfer(packets, virtualized=False)
        vsend, vreceive = run_transfer(packets, virtualized=True)
        rows[packets] = (send, receive, vsend, vreceive)
    return rows


def test_table3_noc_virtualization(benchmark):
    rows = benchmark(measure_all)
    if once("table3"):
        table = Table(
            "Table 3 — NoC virtualization (clocks, paper / measured)",
            ["packets", "Send", "Receive", "vSend", "vReceive"])
        for packets, measured in rows.items():
            paper = PAPER[packets]
            table.add(packets, *(
                f"{p}/{m}" for p, m in zip(paper, measured)))
        table.show()
    for packets, (send, receive, vsend, vreceive) in rows.items():
        paper_send = PAPER[packets][0]
        # Absolute calibration within 5 % of the paper's Send column.
        assert send == pytest.approx(paper_send, rel=0.05)
        # Virtualization overhead small and amortizing (paper: 1-2 %).
        overhead = (vsend - send) / send
        assert 0 < overhead < 0.15 if packets == 2 else overhead < 0.05
        assert vreceive > vsend  # meta-zone fetch on the receive path


def test_table3_overhead_amortizes(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    small = (rows[2][2] - rows[2][0]) / rows[2][0]
    large = (rows[30][2] - rows[30][0]) / rows[30][0]
    assert large < small  # relative overhead shrinks with transfer size
    assert large < 0.02   # ~1 % at 30 packets (paper's claim)
