#!/usr/bin/env python
"""Fleet benchmark: multi-chip serving with live-migration defrag.

Replays a seeded fragmentation-heavy trace across an N-chip
:class:`~repro.serving.fleet.FleetScheduler` twice — once with live
vNPU migration enabled (:class:`~repro.serving.fleet.DefragPolicy`) and
once as a no-migration baseline — then once per cross-chip placement
policy, and emits a canonical JSON artifact: per-chip utilization
spread, queue p50/p95, migration counts, and fragmentation before
(baseline) / after (defrag). Two runs with the same seed produce
byte-identical JSON.

Run:  PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
      (or plainly ``python benchmarks/bench_fleet.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.arch.config import sim_config  # noqa: E402
from repro.serving import (  # noqa: E402
    DefragPolicy,
    FleetScheduler,
    generate_fleet_trace,
)

#: Fleet-wide mean inter-arrival gap that lands the fleet at moderate
#: utilization — blocked arrivals are fragmentation's fault, not raw
#: capacity's, which is the regime live migration exists for.
MEAN_INTERARRIVAL = 20_000_000


def run_fleet(seed: int, sessions: int, chips: int, cores: int,
              placement: str, defrag: DefragPolicy | None) -> dict:
    trace = generate_fleet_trace(
        seed, sessions, chips=chips, max_cores=cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        fragmentation_heavy=True,
    )
    fleet = FleetScheduler.homogeneous(chips, cores=cores,
                                       placement=placement, defrag=defrag)
    metrics = fleet.serve(trace)
    frequency = fleet.chips[0].chip.config.frequency_hz
    return metrics.summary(frequency)


def digest(summary: dict) -> dict:
    """The comparable slice of one fleet run's summary."""
    return {
        "admission_failures": summary["admission_failures"],
        "fragmentation": summary["fragmentation"],
        "migrations": summary["fleet"]["migrations"],
        "per_chip_utilization_time_weighted":
            summary["fleet"]["per_chip_utilization_time_weighted"],
        "queue_delay_cycles": summary["queue_delay_cycles"],
        "sessions_completed": summary["sessions_completed"],
        "sessions_migrated": summary["fleet"]["sessions_migrated"],
        "sessions_rejected": summary["sessions_rejected"],
        "utilization_spread_time_weighted":
            summary["fleet"]["utilization_spread_time_weighted"],
        "utilization_time_weighted": summary["utilization_time_weighted"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=150,
                        help="trace length (default: 150)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chips", type=int, default=3,
                        help="fleet size (default: 3)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="defrag fragmentation threshold (default: 0.2)")
    parser.add_argument("--quick", action="store_true",
                        help="60-session smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_fleet.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 60 if args.quick else args.sessions
    defrag = DefragPolicy(fragmentation_threshold=args.threshold)

    # The headline comparison: same trace, migration on vs off.
    baseline = run_fleet(args.seed, sessions, args.chips, args.cores,
                         "least_loaded", None)
    defragged = run_fleet(args.seed, sessions, args.chips, args.cores,
                          "least_loaded", defrag)

    # Cross-chip placement policies, all with defrag enabled.
    placements = {
        name: digest(run_fleet(args.seed, sessions, args.chips, args.cores,
                               name, defrag))
        for name in ("best_fit", "power_of_two")
    }
    placements["least_loaded"] = digest(defragged)

    base_p95 = baseline["queue_delay_cycles"]["p95"]
    dfr_p95 = defragged["queue_delay_cycles"]["p95"]
    payload = {
        "config": {
            "bench": "fleet",
            "chips": args.chips,
            "cores_per_chip": args.cores,
            "defrag_threshold": args.threshold,
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "seed": args.seed,
            "sessions": sessions,
        },
        "defrag_comparison": {
            "baseline_no_migration": digest(baseline),
            "defrag_enabled": digest(defragged),
            #: Fragmentation before (no migration) and after (defrag).
            "fragmentation_before": baseline["fragmentation"],
            "fragmentation_after": defragged["fragmentation"],
            "p95_queue_delay_improvement": round(
                (base_p95 - dfr_p95) / base_p95 if base_p95 else 0.0, 6),
        },
        "placements": placements,
    }
    path = write_bench_json("fleet", payload, directory=args.out)

    table = Table(
        f"Fleet — {sessions} sessions, seed {args.seed}, "
        f"{args.chips} x {args.cores}-core chips",
        ["metric", "no migration", "defrag"],
    )
    for label, key in (("queue delay p50 (cycles)", "p50"),
                       ("queue delay p95 (cycles)", "p95"),
                       ("queue delay mean (cycles)", "mean")):
        table.add(label, baseline["queue_delay_cycles"][key],
                  defragged["queue_delay_cycles"][key])
    table.add("admission failures", baseline["admission_failures"],
              defragged["admission_failures"])
    table.add("fragmentation (mean)",
              baseline["fragmentation"]["time_weighted_mean"],
              defragged["fragmentation"]["time_weighted_mean"])
    table.add("utilization spread",
              baseline["fleet"]["utilization_spread_time_weighted"],
              defragged["fleet"]["utilization_spread_time_weighted"])
    table.add("migrations", 0, defragged["fleet"]["migrations"])
    table.show()
    print(f"p95 queue-delay improvement: "
          f"{payload['defrag_comparison']['p95_queue_delay_improvement']:.1%}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
