#!/usr/bin/env python
"""Perf-trajectory gate: committed timing artifacts vs the ledger.

``benchmarks/trajectory.json`` is the repo's performance ledger: one
entry per tracked metric (engine events/s, sharded-fleet speedup, ...)
recording the value each PR locked in. This checker re-reads the
**committed** timing artifacts and fails when any tracked metric has
drifted more than its tolerance below the ledger — i.e. when a PR
regenerates a timing artifact with a regression without a deliberate,
reviewed ledger update. Improvements never fail (ratchet the ledger
in the PR that earns them).

Timing artifacts are host-dependent, so entries can name a gate guard
(``gate_path``): when the artifact records its own gate as
unenforced — e.g. the shard bench's speedup gate on a host with too
few CPUs — the entry is skipped with the artifact's recorded reason
instead of failing on noise.

Run:  PYTHONPATH=src python benchmarks/check_trajectory.py
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

_HERE = Path(__file__).resolve().parent


def walk(payload: dict, path: list[str]):
    """Resolve a JSON path like ["workers", "8", "speedup"]."""
    node = payload
    for key in path:
        node = node[key]
    return node


def check_entry(entry: dict, directory: Path) -> tuple[str, str, str]:
    """One ledger entry -> (metric, verdict, detail)."""
    metric = entry["metric"]
    artifact = directory / entry["artifact"]
    if not artifact.is_file():
        return metric, "FAIL", f"{entry['artifact']} missing"
    payload = json.loads(artifact.read_text())
    if entry.get("gate_path"):
        gate = walk(payload, entry["gate_path"])
        if not gate.get("enforced", True):
            reason = gate.get("reason", "gate disabled")
            return metric, "SKIP", f"gate not enforced: {reason}"
    try:
        measured = walk(payload, entry["path"])
    except KeyError as exc:
        return metric, "FAIL", f"path {entry['path']} missing ({exc})"
    floor = entry["value"] * (1.0 - entry["tolerance"])
    if measured < floor:
        return metric, "FAIL", (
            f"{measured} < {floor:.1f} "
            f"(ledger {entry['value']} - {entry['tolerance']:.0%})")
    return metric, "PASS", f"{measured} vs ledger {entry['value']}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ledger", default=str(_HERE / "trajectory.json"),
                        help="trajectory ledger "
                             "(default: benchmarks/trajectory.json)")
    parser.add_argument("--artifacts", default=str(_HERE),
                        help="directory holding the committed "
                             "BENCH_*_timing.json files "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    ledger = json.loads(Path(args.ledger).read_text())
    directory = Path(args.artifacts)

    rows = [check_entry(entry, directory) for entry in ledger["entries"]]
    failures = sum(1 for _, verdict, _ in rows if verdict == "FAIL")

    width = max(len(metric) for metric, _, _ in rows)
    print(f"{'metric'.ljust(width)}  result  detail")
    print(f"{'-' * width}  ------  ------")
    for metric, verdict, detail in rows:
        print(f"{metric.ljust(width)}  {verdict.ljust(6)}  {detail}")
    print(f"\n{len(rows) - failures}/{len(rows)} within trajectory")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
