#!/usr/bin/env python
"""Serving benchmark: a seeded multi-tenant churn trace on one chip.

Replays a deterministic trace of tenant sessions through the
:class:`~repro.serving.scheduler.ClusterScheduler` and emits a canonical
JSON artifact (sessions/sec, p50/p95 queue delay, time-weighted
utilization, fragmentation, mapping-cache hit rate). Two runs with the
same seed produce byte-identical JSON.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
      (or plainly ``python benchmarks/bench_serving.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.arch.chip import Chip  # noqa: E402
from repro.arch.config import sim_config  # noqa: E402
from repro.core.hypervisor import Hypervisor  # noqa: E402
from repro.serving import ClusterScheduler, generate_trace  # noqa: E402


def run_serving(seed: int, sessions: int, cores: int, policy: str,
                mean_interarrival: int) -> dict:
    chip = Chip(sim_config(cores))
    hypervisor = Hypervisor(chip)
    scheduler = ClusterScheduler(chip, hypervisor, policy=policy)
    trace = generate_trace(seed, sessions, max_cores=cores,
                           mean_interarrival_cycles=mean_interarrival)
    metrics = scheduler.serve(trace)

    summary = metrics.summary(chip.config.frequency_hz)
    strategies: dict[str, int] = {}
    for record in metrics.records:
        strategies[record.strategy] = strategies.get(record.strategy, 0) + 1
    cache = hypervisor.mapper.cache_stats()
    return {
        "config": {
            "bench": "serving",
            "chip_cores": cores,
            "mean_interarrival_cycles": mean_interarrival,
            "policy": policy,
            "seed": seed,
            "sessions": sessions,
        },
        "mapping_cache": {
            "hit_rate": round(cache["hit_rate"], 6),
            "hits": cache["hits"],
            "misses": cache["misses"],
        },
        "results": summary,
        "strategies": strategies,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=500,
                        help="trace length (default: 500)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cores", type=int, default=36,
                        help="chip size (default: the paper's 36-core sim)")
    parser.add_argument("--policy", default="fcfs",
                        choices=("fcfs", "best_fit", "priority"))
    parser.add_argument("--mean-interarrival", type=int, default=2_000_000,
                        help="mean arrival gap in cycles")
    parser.add_argument("--quick", action="store_true",
                        help="60-session smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_serving.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 60 if args.quick else args.sessions

    payload = run_serving(args.seed, sessions, args.cores, args.policy,
                          args.mean_interarrival)
    path = write_bench_json("serving", payload, directory=args.out)

    results = payload["results"]
    table = Table(
        f"Serving — {sessions} sessions, seed {args.seed}, "
        f"{args.policy} on {args.cores} cores",
        ["metric", "value"],
    )
    table.add("sessions completed", results["sessions_completed"])
    table.add("sessions/sec (sim time)", results["sessions_per_second"])
    table.add("queue delay p50 (cycles)", results["queue_delay_cycles"]["p50"])
    table.add("queue delay p95 (cycles)", results["queue_delay_cycles"]["p95"])
    table.add("utilization (time-weighted)",
              results["utilization_time_weighted"])
    table.add("fragmentation (mean)",
              results["fragmentation"]["time_weighted_mean"])
    table.add("mapping-cache hit rate",
              payload["mapping_cache"]["hit_rate"])
    table.show()
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
