#!/usr/bin/env python
"""Sharded-fleet benchmark: 64 chips, 20k sessions, multi-core scaling.

Replays one seeded bursty 20k-session trace with a
gold/silver/best-effort SLO mix across a 64-chip fleet partitioned
into 8 shards by :class:`~repro.serving.shard.ShardedFleetScheduler`,
once per worker count (1, 2, 4, 8). Two artifacts come out:

- ``BENCH_shard.json`` — the deterministic one: run configuration and
  the aggregate fleet summary. It carries **no worker or timing
  information**, because the summary is byte-identical for every
  worker count — that invariance *is* the artifact's gate (the run
  exits 1 if any worker count disagrees with the ``workers=1``
  oracle), and the determinism matrix byte-compares the file across
  runs and worker counts.
- ``BENCH_shard_timing.json`` — the wall clocks: per-worker-count
  elapsed seconds, events/s and speedup over one worker. Timing is
  host-dependent by nature, so it lives outside the determinism
  check. The speedup gate (>= 3x at 8 workers) enforces only on hosts
  with at least 8 usable CPUs; elsewhere it self-disables and records
  the reason in the artifact — a 1-CPU container physically cannot
  exhibit multi-core speedup, and pretending otherwise would gate on
  noise.

Run:  PYTHONPATH=src python benchmarks/bench_shard.py [--quick]
      (or plainly ``python benchmarks/bench_shard.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.serving import (  # noqa: E402
    DEFAULT_SLO_MIX,
    ShardedFleetScheduler,
    generate_fleet_trace,
)

#: Fleet-wide mean inter-arrival gap: scaled by chip count inside
#: ``generate_fleet_trace``, so each chip sees the serving benches' load.
MEAN_INTERARRIVAL = 20_000_000

#: Speedup bar at the largest worker count (ISSUE 8's acceptance target).
SPEEDUP_TARGET = 3.0

#: Worker counts the full run sweeps (the last one carries the gate).
WORKER_SWEEP = (1, 2, 4, 8)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def run_sharded(trace, *, chips: int, cores: int, shards: int,
                epoch_cycles: int, workers: int) -> tuple[dict, float, int]:
    """One full replay; returns (summary, wall seconds, sim cycles)."""
    fleet = ShardedFleetScheduler.homogeneous(
        chips, cores=cores, shards=shards, workers=workers,
        epoch_cycles=epoch_cycles, policy="priority",
        elastic="shrink_then_preempt")
    fleet.submit(trace)
    start = time.perf_counter()
    final_fence = fleet.run()
    wall = time.perf_counter() - start
    return fleet.summary(), wall, final_fence


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=20_000,
                        help="trace length (default: 20000)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--chips", type=int, default=64,
                        help="fleet size (default: 64)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count (default: 8)")
    parser.add_argument("--epoch-cycles", type=int, default=25_000_000,
                        help="fence spacing in cycles (default: 25M)")
    parser.add_argument("--workers", type=int, default=None,
                        help="run ONE worker count instead of the sweep")
    parser.add_argument("--quick", action="store_true",
                        help="16-chip/600-session smoke sweep of "
                             "workers 1 and 2, no speedup gate (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_shard.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)

    if args.quick:
        sessions, chips, shards = 600, 16, 4
        sweep = (1, 2)
    else:
        sessions, chips, shards = args.sessions, args.chips, args.shards
        sweep = WORKER_SWEEP
    if args.workers is not None:
        sweep = (args.workers,)

    trace = generate_fleet_trace(
        args.seed, sessions, chips=chips, max_cores=args.cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        arrival_process="bursty", slo_mix=DEFAULT_SLO_MIX,
    )

    summaries: dict[int, str] = {}
    walls: dict[int, float] = {}
    baseline: dict | None = None
    final_fence = 0
    for workers in sweep:
        summary, wall, final_fence = run_sharded(
            trace, chips=chips, cores=args.cores, shards=shards,
            epoch_cycles=args.epoch_cycles, workers=workers)
        summaries[workers] = json.dumps(summary, sort_keys=True)
        walls[workers] = wall
        if baseline is None:
            baseline = summary

    oracle_workers = sweep[0]
    divergent = [w for w in sweep
                 if summaries[w] != summaries[oracle_workers]]

    payload = {
        "config": {
            "arrival_process": "bursty",
            "bench": "shard",
            "chips": chips,
            "cores_per_chip": args.cores,
            "dealing": "balanced",
            "elastic": "shrink_then_preempt",
            "epoch_cycles": args.epoch_cycles,
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "policy": "priority",
            "seed": args.seed,
            "sessions": sessions,
            "shards": shards,
            "slo_mix": {name: weight for name, weight in DEFAULT_SLO_MIX},
        },
        "summary": baseline,
    }
    path = write_bench_json("shard", payload, directory=args.out)

    cpus = usable_cpus()
    top = max(sweep)
    speedup = {w: round(walls[sweep[0]] / walls[w], 3) for w in sweep}
    gate_enforced = (not args.quick and args.workers is None
                     and top >= 8 and cpus >= 8)
    if gate_enforced:
        gate_reason = f"host has {cpus} usable CPUs"
    elif args.quick or args.workers is not None:
        gate_reason = "quick/single-worker run never gates speedup"
    else:
        gate_reason = (f"host has {cpus} usable CPUs; multi-core speedup "
                       f"is unmeasurable below 8")
    timing = {
        "cycles_simulated": final_fence,
        "gate": {
            "enforced": gate_enforced,
            "reason": gate_reason,
            "speedup_target": SPEEDUP_TARGET,
        },
        "usable_cpus": cpus,
        "workers": {
            str(w): {
                "sessions_per_wall_second": round(sessions / walls[w], 1),
                "speedup": speedup[w],
                "wall_seconds": round(walls[w], 3),
            }
            for w in sweep
        },
    }
    timing_path = write_bench_json("shard_timing", timing,
                                   directory=args.out)

    table = Table(
        f"Sharded fleet — {sessions} sessions, seed {args.seed}, "
        f"{chips} x {args.cores}-core chips, {shards} shards",
        ["workers", "wall s", "speedup", "sessions/s", "aggregate"],
    )
    for w in sweep:
        table.add(w, round(walls[w], 3), speedup[w],
                  round(sessions / walls[w], 1),
                  "DIVERGES" if w in divergent else "identical")
    table.show()
    print(f"sessions completed: {baseline['sessions_completed']}, "
          f"epochs: {baseline['sharding']['epochs']}, "
          f"spills committed: {baseline['sharding']['spills_committed']}")
    print(f"wrote {path}")
    print(f"wrote {timing_path}")

    if divergent:
        print(f"FAIL: worker counts {divergent} disagree with the "
              f"{oracle_workers}-worker oracle aggregate")
        return 1
    if gate_enforced and speedup[top] < SPEEDUP_TARGET:
        print(f"FAIL: {top}-worker speedup {speedup[top]:.2f}x is below "
              f"the {SPEEDUP_TARGET}x target")
        return 1
    if not gate_enforced:
        print(f"speedup gate not enforced: {gate_reason}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
