"""Fig 2: evolution of NPU hardware resources (FLOPS and SRAM, 2017-24).

Paper shape: both metrics grow 1-2 orders of magnitude over the period,
and inter-core connected NPUs carry far more on-chip SRAM than GPUs/TPUs
of the same era.
"""

from benchmarks.common import Table, once
from repro.analysis.catalog import (
    growth_factor,
    intercore_sram_advantage,
    series,
)


def build_series():
    return series("tflops"), series("sram_mb")


def test_fig02_catalog(benchmark):
    tflops, sram = benchmark(build_series)
    if once("fig02"):
        table = Table("Fig 2 — NPU hardware evolution",
                      ["family", "device-year", "TFLOPS", "SRAM (MB)"])
        for family in sorted(tflops):
            for (year, tf), (_, mb) in zip(tflops[family], sram[family]):
                table.add(family, year, tf, mb)
        table.show()
        summary = Table("Fig 2 — trend summary (paper vs measured)",
                        ["quantity", "paper", "measured"])
        summary.add("FLOPS growth span", ">=10x (log axis)",
                    f"{growth_factor('tflops'):.0f}x")
        summary.add("SRAM growth span", ">=10x (log axis)",
                    f"{growth_factor('sram_mb'):.0f}x")
        summary.add("inter-core SRAM advantage", ">1 order visible",
                    f"{intercore_sram_advantage():.1f}x median")
        summary.show()
    assert growth_factor("tflops") > 10
    assert intercore_sram_advantage() > 2
