#!/usr/bin/env python
"""Elastic-serving benchmark: SLO enforcement on a bursty 8-chip fleet.

Replays one seeded bursty (Markov-modulated) trace with a gold/silver/
best-effort SLO mix across an 8-chip :class:`~repro.serving.fleet.
FleetScheduler` three times — a static baseline (queue and wait), a
shrink-only elastic policy, and the full shrink-then-preempt policy —
and emits a canonical JSON artifact: per-class SLO attainment, p99
queue delay, goodput and preemption/resize counts. Two runs with the
same seed produce byte-identical JSON.

The script is also a gate: it exits 1 unless the shrink-then-preempt
policy *strictly beats* the static baseline on both gold-tier p99 queue
delay and gold-tier SLO attainment — the acceptance bar for the elastic
layer. (Wall-clock timing is deliberately not recorded; everything in
the artifact is simulated and deterministic.)

Run:  PYTHONPATH=src python benchmarks/bench_elastic.py [--quick]
      (or plainly ``python benchmarks/bench_elastic.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.serving import (  # noqa: E402
    DEFAULT_SLO_MIX,
    FleetScheduler,
    generate_fleet_trace,
)

#: Fleet-wide mean inter-arrival gap. Per-chip load matches the fleet
#: bench's moderate-utilization regime; the burst state compresses gaps
#: 10x, which is where the static scheduler's gold tier falls over.
MEAN_INTERARRIVAL = 20_000_000


def run_elastic(trace, chips: int, cores: int,
                elastic: str | None) -> dict:
    fleet = FleetScheduler.homogeneous(chips, cores=cores,
                                       policy="priority", elastic=elastic)
    metrics = fleet.serve(trace)
    frequency = fleet.chips[0].chip.config.frequency_hz
    return metrics.summary(frequency)


def digest(summary: dict) -> dict:
    """The comparable slice of one run's summary."""
    return {
        "admission_failures": summary["admission_failures"],
        "queue_delay_cycles": summary["queue_delay_cycles"],
        "sessions_completed": summary["sessions_completed"],
        "sessions_rejected": summary["sessions_rejected"],
        "slo": summary["slo"],
        "utilization_time_weighted": summary["utilization_time_weighted"],
    }


def gold(summary: dict) -> dict:
    return summary["slo"]["classes"]["gold"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=400,
                        help="trace length (default: 400)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chips", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--cores", type=int, default=16,
                        help="cores per chip (default: 16)")
    parser.add_argument("--quick", action="store_true",
                        help="100-session smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_elastic.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 100 if args.quick else args.sessions

    trace = generate_fleet_trace(
        args.seed, sessions, chips=args.chips, max_cores=args.cores,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        arrival_process="bursty", slo_mix=DEFAULT_SLO_MIX,
    )
    variants = {
        "static": run_elastic(trace, args.chips, args.cores, None),
        "shrink": run_elastic(trace, args.chips, args.cores, "shrink"),
        "shrink_then_preempt": run_elastic(trace, args.chips, args.cores,
                                           "shrink_then_preempt"),
    }

    static_gold = gold(variants["static"])
    elastic_gold = gold(variants["shrink_then_preempt"])
    base_p99 = static_gold["p99_queue_delay_cycles"]
    elastic_p99 = elastic_gold["p99_queue_delay_cycles"]
    payload = {
        "config": {
            "arrival_process": "bursty",
            "bench": "elastic",
            "chips": args.chips,
            "cores_per_chip": args.cores,
            "mean_interarrival_cycles": MEAN_INTERARRIVAL,
            "seed": args.seed,
            "sessions": sessions,
            "slo_mix": {name: weight for name, weight in DEFAULT_SLO_MIX},
        },
        "elastic_comparison": {
            "gold_attainment_gain": round(
                elastic_gold["attainment"] - static_gold["attainment"], 6),
            "gold_p99_improvement": round(
                (base_p99 - elastic_p99) / base_p99 if base_p99 else 0.0, 6),
        },
        "variants": {name: digest(summary)
                     for name, summary in variants.items()},
    }
    path = write_bench_json("elastic", payload, directory=args.out)

    table = Table(
        f"Elastic SLO serving — {sessions} sessions, seed {args.seed}, "
        f"{args.chips} x {args.cores}-core chips, bursty arrivals",
        ["metric", "static", "shrink", "shrink+preempt"],
    )
    rows = [
        ("gold attainment", lambda s: gold(s)["attainment"]),
        ("gold p99 queue delay", lambda s: gold(s)["p99_queue_delay_cycles"]),
        ("silver attainment",
         lambda s: s["slo"]["classes"]["silver"]["attainment"]),
        ("best-effort p99 delay",
         lambda s: s["slo"]["classes"]["best_effort"]
         ["p99_queue_delay_cycles"]),
        ("preemptions", lambda s: s["slo"]["preemptions"]),
        ("shrinks", lambda s: s["slo"]["shrinks"]),
        ("grow-backs", lambda s: s["slo"]["grows"]),
        ("sessions completed", lambda s: s["sessions_completed"]),
    ]
    for label, extract in rows:
        table.add(label, *(extract(variants[name])
                           for name in ("static", "shrink",
                                        "shrink_then_preempt")))
    table.show()
    print(f"gold p99 improvement: "
          f"{payload['elastic_comparison']['gold_p99_improvement']:.1%}, "
          f"attainment {static_gold['attainment']:.3f} -> "
          f"{elastic_gold['attainment']:.3f}")
    print(f"wrote {path}")

    if (elastic_gold["attainment"] <= static_gold["attainment"]
            or elastic_p99 >= base_p99):
        print("FAIL: shrink_then_preempt does not strictly beat the "
              "static baseline on gold attainment and p99 queue delay")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
