"""Shared helpers for the per-figure benchmark harness.

Every bench prints a paper-vs-measured table (captured into
EXPERIMENTS.md) and times its core computation with pytest-benchmark.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.reporting import Table

__all__ = ["Table", "once", "write_bench_json"]

_printed: set[str] = set()


def once(key: str) -> bool:
    """True the first time ``key`` is seen (print tables once per run)."""
    if key in _printed:
        return False
    _printed.add(key)
    return True


def write_bench_json(name: str, payload: dict,
                     directory: str | Path | None = None) -> Path:
    """Write one bench's results as a comparable ``BENCH_<name>.json``.

    Serialization is canonical — sorted keys, fixed separators, trailing
    newline — so two runs with identical results produce byte-identical
    artifacts (the perf trajectory across PRs diffs these files).
    """
    target = Path(directory) if directory is not None else Path(__file__).parent
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True,
                      separators=(",", ": "))
    path.write_text(text + "\n")
    return path
