"""Shared helpers for the per-figure benchmark harness.

Every bench prints a paper-vs-measured table (captured into
EXPERIMENTS.md) and times its core computation with pytest-benchmark.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from repro.analysis.reporting import Table

__all__ = ["Table", "once"]

_printed: set[str] = set()


def once(key: str) -> bool:
    """True the first time ``key`` is seen (print tables once per run)."""
    if key in _printed:
        return False
    _printed.add(key)
    return True
