#!/usr/bin/env python
"""Control-plane service benchmark: wire protocol vs batch oracle.

Three deterministic legs, one artifact:

- **Bridge equality** — a scripted :class:`ServiceClient` admits a whole
  seeded trace over a Unix socket into an ``asap`` control plane
  (``autostart=False``: the simulation advances only on ``drain``) and
  drains to completion. The final summary off the wire must byte-equal
  batch ``FleetScheduler.serve()`` on the same trace — the service's
  determinism bridge (first backlog fold = the batch ``submit`` path).
- **Warm restart** — the same run paused mid-flight: snapshot to disk,
  rebuild a second control plane from the file, finish the run. The
  stitched summary must byte-equal the never-stopped oracle.
- **Backpressure** — a plane bounded at ``max_pending=4`` receives 8
  admissions: exactly 4 are accepted, 4 answered ``busy`` (with a
  retry hint), and the accepted 4 all complete — refusals are loud,
  drops never silent.

``BENCH_service.json`` records the verdicts and counters;
``check_determinism.py`` replays the whole bench twice and diffs the
bytes. Any leg failing its equality check exits nonzero.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.serving import (  # noqa: E402
    DEFAULT_SLO_MIX,
    ControlPlane,
    FleetScheduler,
    ServiceClient,
    ServingConfig,
    canonical_json,
    generate_fleet_trace,
    summary_wire,
)

#: Fleet-wide mean inter-arrival gap (as in the snapshot harness).
MEAN_INTERARRIVAL = 2_000_000


def make_config() -> ServingConfig:
    return ServingConfig(policy="priority", elastic="shrink_then_preempt")


def make_trace(seed: int, sessions: int, chips: int):
    return generate_fleet_trace(
        seed, sessions, chips=chips, max_cores=16,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        arrival_process="bursty", slo_mix=DEFAULT_SLO_MIX)


def batch_summary(trace, chips: int) -> str:
    """The oracle: plain batch serve(), canonical bytes."""
    fleet = FleetScheduler.homogeneous(chips, cores=16,
                                       config=make_config())
    fleet.submit(trace)
    fleet.run()
    frequency = fleet.chips[0].chip.config.frequency_hz
    return canonical_json(summary_wire(fleet.metrics.summary(frequency)))


async def service_summary(trace, chips: int, scratch: Path) -> str:
    """The same trace through the wire protocol, asap + explicit drain."""
    plane = ControlPlane(chips=chips, cores=16, config=make_config(),
                         mode="asap", max_pending=len(trace) + 1,
                         autostart=False)
    socket_path = str(scratch / "service.sock")
    await plane.start(unix_path=socket_path)
    client = await ServiceClient.connect(unix_path=socket_path)
    try:
        for session in trace:
            response = await client.admit(session)
            if response["status"] != "ok":
                raise RuntimeError(f"admit refused: {response}")
        drained = await client.drain()
        await client.shutdown()
    finally:
        await client.close()
        await plane.stop()
    return canonical_json(drained["summary"])


async def warm_restart_summary(trace, chips: int, scratch: Path) -> str:
    """Admit everything, pause mid-run, snapshot, restore, finish."""
    plane = ControlPlane(chips=chips, cores=16, config=make_config(),
                         mode="asap", max_pending=len(trace) + 1,
                         autostart=False)
    for session in trace:
        response = plane.admit(session)
        if response["status"] != "ok":
            raise RuntimeError(f"admit refused: {response}")
    pause_at = trace[len(trace) // 2].arrival_cycle
    await plane.drain(until=pause_at)
    snap_path = str(scratch / "service.snapshot.pkl")
    plane.snapshot_to(snap_path)
    restored = ControlPlane.restore(snap_path, autostart=False)
    drained = await restored.drain()
    return canonical_json(drained["summary"])


async def backpressure_probe(trace, chips: int) -> dict:
    """8 admissions into a max_pending=4 plane: 4 ok, 4 busy, 4 served."""
    probe = trace[:8]
    plane = ControlPlane(chips=chips, cores=16, config=make_config(),
                         mode="asap", max_pending=4, autostart=False)
    accepted, busy = 0, 0
    for session in probe:
        response = plane.admit(session)
        if response["status"] == "ok":
            accepted += 1
        elif response["status"] == "busy":
            busy += 1
            assert response["retry_after_cycles"] >= 1
    drained = await plane.drain()
    completed = drained["summary"]["sessions_completed"]
    return {"offered": len(probe), "accepted": accepted, "busy": busy,
            "completed_after_drain": completed}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=200,
                        help="trace length (default: 200)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--chips", type=int, default=4,
                        help="fleet size (default: 4)")
    parser.add_argument("--quick", action="store_true",
                        help="40-session smoke run (CI)")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_service.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    sessions = 40 if args.quick else args.sessions

    trace = make_trace(args.seed, sessions, args.chips)
    oracle = batch_summary(trace, args.chips)
    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        scratch_dir = Path(scratch)
        wire = asyncio.run(service_summary(trace, args.chips, scratch_dir))
        restarted = asyncio.run(
            warm_restart_summary(trace, args.chips, scratch_dir))
    backpressure = asyncio.run(backpressure_probe(trace, args.chips))

    wire_matches = wire == oracle
    restart_matches = restarted == oracle
    backpressure_ok = (
        backpressure["accepted"] == 4 and backpressure["busy"] == 4
        and backpressure["completed_after_drain"] == 4)

    table = Table(
        "Control-plane service vs batch oracle",
        ["leg", "verdict"],
        [
            ["wire bridge (asap drain)",
             "byte-equal" if wire_matches else "MISMATCH"],
            ["warm restart (snapshot/restore)",
             "byte-equal" if restart_matches else "MISMATCH"],
            ["backpressure (4 of 8 busy)",
             "ok" if backpressure_ok else "FAILED"],
        ],
    )
    print(table.render())

    payload = {
        "config": {
            "sessions": sessions,
            "seed": args.seed,
            "chips": args.chips,
            "serving_config": make_config().to_dict(),
            "quick": bool(args.quick),
        },
        "bridge": {
            "wire_matches_batch": wire_matches,
            "warm_restart_matches_batch": restart_matches,
        },
        "backpressure": {**backpressure, "ok": backpressure_ok},
    }
    write_bench_json("service", payload, directory=args.out)
    if not (wire_matches and restart_matches and backpressure_ok):
        print("service bench FAILED: wire/batch divergence or "
              "backpressure anomaly")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
