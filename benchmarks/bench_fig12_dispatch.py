"""Fig 12: instruction-dispatch latency (IBUS vs instruction NoC) against
kernel execution time.

Paper shape: IBUS is fixed and shortest; iNoC latency grows with hop
distance; Conv/Matmul execution is 2-3 orders of magnitude longer, so
routing latency is negligible.
"""

from benchmarks.common import Table, once
from repro.arch.compute import ComputeModel
from repro.arch.config import fpga_config
from repro.arch.controller import NpuController
from repro.arch.topology import Topology
from repro.core.routing_table import StandardRoutingTable


def measure():
    topo = Topology.mesh2d(2, 4)
    inoc = NpuController(topo, dispatch_mode="inoc")
    ibus = NpuController(topo, dispatch_mode="ibus")
    table = StandardRoutingTable(1, {v: v for v in range(8)})
    inoc.install_routing_table(table, hyper_mode=True)
    ibus.install_routing_table(table, hyper_mode=True)
    dispatch = {
        "IBUS": ibus.transport_cycles(0),
        **{f"NoC#{core + 1}": inoc.transport_cycles(core)
           for core in range(8)},
    }
    compute = ComputeModel(fpga_config().core)
    kernels = {
        "Conv": compute.conv2d(32, 32, 16, 16, 3).cycles,
        "Matmul": compute.matmul(128, 128, 128).cycles,
    }
    return dispatch, kernels


def test_fig12_dispatch(benchmark):
    dispatch, kernels = benchmark(measure)
    if once("fig12"):
        table = Table("Fig 12 — dispatch latency vs kernel execution (clocks)",
                      ["path", "clocks"])
        for name, clocks in {**dispatch, **kernels}.items():
            table.add(name, clocks)
        table.show()
    noc_latencies = [v for k, v in dispatch.items() if k.startswith("NoC")]
    # IBUS fixed and minimal; NoC grows with distance.
    assert dispatch["IBUS"] <= min(noc_latencies)
    assert max(noc_latencies) > min(noc_latencies)
    # Kernels are 2-3 orders of magnitude above dispatch.
    worst_dispatch = max(noc_latencies)
    assert kernels["Conv"] > 100 * worst_dispatch
    assert kernels["Matmul"] > 50 * worst_dispatch
