#!/usr/bin/env python
"""Event-engine benchmark: calendar-queue throughput on four hot-path
workload shapes, pinned by an events/s trajectory gate.

Drives the :mod:`repro.sim.engine` calendar queue through the workload
shapes that dominate every serving replay and emits two artifacts,
mirroring the ``BENCH_cost`` split:

- ``BENCH_engine.json`` — the *deterministic* digest: per-workload event
  counts, dispatch mix (single-waiter / multi-waiter / no-waiter
  events), bucket-sweep counts and peak bucket occupancy, and final
  cycles. Byte-identical across runs (the CI determinism check).
- ``BENCH_engine_timing.json`` — wall-clock events/s per workload
  (median over repeats) plus the trajectory-gate verdict. Host timing is
  inherently non-reproducible, so it lives outside the determinism-
  checked artifact.

Workloads:

- ``timeout_hot_ab`` — the interleaved timeout-hot A/B stress from PR 3
  (two process groups on different periods; 665k events/s on the heap
  engine). This is the **gate workload**.
- ``same_cycle_burst`` — broadcast fan-out: multi-waiter events joined
  by ``all_of``, the bucket-sweep best case.
- ``far_future_sparse`` — seeded far-future timeouts scattered over
  distinct cycles, the calendar queue's singleton-bucket worst case.
- ``resource_pipeline`` — FIFO ``Resource`` contention, stressing the
  ``succeed`` scheduling path.

The trajectory gate (``--gate``, run by CI) reads the floor pinned in
``benchmarks/engine_floor.json`` and fails when the gate workload's
median events/s drops more than the configured tolerance below it. The
floor is updated only deliberately, in-repo — never auto-ratcheted from
a CI measurement.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--gate]
      (or plainly ``python benchmarks/bench_engine.py`` — the script
      bootstraps ``src`` onto ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.common import Table, write_bench_json  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.resources import Resource  # noqa: E402

FLOOR_PATH = Path(__file__).parent / "engine_floor.json"


class CountingSimulator(Simulator):
    """A Simulator whose drain loop counts dispatch structure.

    The counters live in a subclass so the production loop stays
    branch-free; the bench cross-checks ``now`` and bucket bookkeeping
    against a plain run to keep this copy honest.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events_dispatched = 0
        self.single_callback = 0
        self.multi_callback = 0
        self.no_callback = 0
        self.bucket_sweeps = 0
        self.max_bucket = 0

    def _drain(self, until: int | None) -> int:
        cycle_heap = self._cycle_heap
        buckets = self._buckets
        from heapq import heappop
        while cycle_heap:
            cycle = cycle_heap[0]
            if until is not None and cycle > until:
                self.now = until
                return self.now
            heappop(cycle_heap)
            self.now = cycle
            self.bucket_sweeps += 1
            bucket = buckets[cycle]
            for event in bucket:
                event._dispatched = True
                self.events_dispatched += 1
                callback = event._callback
                if callback is None:
                    self.no_callback += 1
                    continue
                callback(event)
                extra = event._extra
                if extra is None:
                    self.single_callback += 1
                else:
                    self.multi_callback += 1
                    for cb in extra:
                        cb(event)
            if len(bucket) > self.max_bucket:
                self.max_bucket = len(bucket)
            del buckets[cycle]
        return self.now

    def digest(self) -> dict:
        return {
            "bucket_sweeps": self.bucket_sweeps,
            "events_dispatched": self.events_dispatched,
            "final_cycle": self.now,
            "max_bucket_occupancy": self.max_bucket,
            "mix": {
                "multi_waiter": self.multi_callback,
                "no_waiter": self.no_callback,
                "single_waiter": self.single_callback,
            },
        }


# -- workload shapes ---------------------------------------------------------

def timeout_hot_ab(sim: Simulator, scale: int) -> None:
    """Interleaved timeout-hot A/B: the PR 3 engine stress (gate shape)."""
    workers = 5 * scale

    def worker_a(sim):
        for _ in range(2000):
            yield sim.timeout(1)

    def worker_b(sim):
        for _ in range(1000):
            yield sim.timeout(2)

    for _ in range(workers):
        sim.process(worker_a(sim))
        sim.process(worker_b(sim))


def same_cycle_burst(sim: Simulator, scale: int) -> None:
    """Broadcast fan-out: one multi-waiter event per round, all_of join."""
    rounds, fanout = 30 * scale, 32

    def waiter(sim, gate):
        value = yield gate
        return value

    def driver(sim):
        for round_index in range(rounds):
            gate = sim.event(name="burst")
            waiters = [sim.process(waiter(sim, gate)) for _ in range(fanout)]
            gate.succeed(round_index)
            yield sim.all_of(waiters)
            yield sim.timeout(1)

    sim.process(driver(sim))


def far_future_sparse(sim: Simulator, scale: int) -> None:
    """Seeded far-future timeouts: scattered, mostly-singleton buckets."""
    workers, steps = 20 * scale, 250
    rng = random.Random(0xC0FFEE)
    delays = [[rng.randrange(1, 100_000) for _ in range(steps)]
              for _ in range(workers)]

    def worker(sim, plan):
        for delay in plan:
            yield sim.timeout(delay)

    for plan in delays:
        sim.process(worker(sim, plan))


def resource_pipeline(sim: Simulator, scale: int) -> None:
    """FIFO Resource contention: grants exercise the succeed path."""
    contenders, grabs = 8 * scale, 100
    resource = Resource(sim, capacity=2, name="link")

    def contender(sim, occupancy):
        for _ in range(grabs):
            yield resource.acquire()
            yield sim.timeout(occupancy)
            resource.release()

    for index in range(contenders):
        sim.process(contender(sim, 1 + index % 3))


WORKLOADS = (
    ("timeout_hot_ab", timeout_hot_ab),
    ("same_cycle_burst", same_cycle_burst),
    ("far_future_sparse", far_future_sparse),
    ("resource_pipeline", resource_pipeline),
)

#: The trajectory gate pins this workload's median events/s.
GATE_WORKLOAD = "timeout_hot_ab"


def run_workload(build, scale: int, repeats: int) -> tuple[dict, dict]:
    """One counting run (digest) plus ``repeats`` timed plain runs."""
    counting = CountingSimulator()
    build(counting, scale)
    counting.run()
    digest = counting.digest()

    rates = []
    walls = []
    for _ in range(repeats):
        sim = Simulator()
        build(sim, scale)
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        if sim.now != digest["final_cycle"]:
            raise AssertionError(
                f"counting drain drifted from the engine: final cycle "
                f"{sim.now} != {digest['final_cycle']}")
        walls.append(wall)
        rates.append(digest["events_dispatched"] / wall if wall else 0.0)
    timing = {
        "median_events_per_second": round(statistics.median(rates)),
        "best_events_per_second": round(max(rates)),
        "median_wall_seconds": round(statistics.median(walls), 4),
        "repeats": repeats,
    }
    return digest, timing


def load_floor() -> dict:
    return json.loads(FLOOR_PATH.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=10,
                        help="workload size multiplier (default: 10)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed runs per workload (default: 5)")
    parser.add_argument("--quick", action="store_true",
                        help="scale-2, 3-repeat smoke run (CI determinism)")
    parser.add_argument("--gate", action="store_true",
                        help="enforce the events/s trajectory gate against "
                             "benchmarks/engine_floor.json")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_engine*.json "
                             "(default: benchmarks/)")
    args = parser.parse_args(argv)
    scale = 2 if args.quick else args.scale
    repeats = 3 if args.quick else args.repeats

    digests: dict[str, dict] = {}
    timings: dict[str, dict] = {}
    for name, build in WORKLOADS:
        digests[name] = {}
        digest, timing = run_workload(build, scale, repeats)
        digests[name] = digest
        timings[name] = timing

    payload = {
        "config": {
            "bench": "engine",
            "gate_workload": GATE_WORKLOAD,
            "repeats": repeats,
            "scale": scale,
        },
        "workloads": digests,
    }
    path = write_bench_json("engine", payload, directory=args.out)

    floor = load_floor()
    gate_rate = timings[GATE_WORKLOAD]["median_events_per_second"]
    gate_floor = floor["floor_events_per_second"]
    tolerance = floor["tolerance"]
    gate_minimum = gate_floor * (1.0 - tolerance)
    gate_ok = gate_rate >= gate_minimum
    timing_payload = {
        "config": payload["config"],
        "gate": {
            "enforced": bool(args.gate),
            "floor_events_per_second": gate_floor,
            "median_events_per_second": gate_rate,
            "minimum_events_per_second": round(gate_minimum),
            "passed": gate_ok,
            "tolerance": tolerance,
            "workload": GATE_WORKLOAD,
        },
        "workloads": timings,
    }
    timing_dir = Path(args.out) if args.out else Path(__file__).parent
    timing_path = timing_dir / "BENCH_engine_timing.json"
    timing_path.write_text(
        json.dumps(timing_payload, indent=2, sort_keys=True) + "\n")

    table = Table(
        f"Event engine — calendar queue, scale {scale}, {repeats} repeats",
        ["workload", "events", "sweeps", "max bucket", "median events/s"],
    )
    for name, _build in WORKLOADS:
        table.add(name, digests[name]["events_dispatched"],
                  digests[name]["bucket_sweeps"],
                  digests[name]["max_bucket_occupancy"],
                  f"{timings[name]['median_events_per_second']:,}")
    table.show()
    print(f"gate workload {GATE_WORKLOAD}: {gate_rate:,} events/s median "
          f"(floor {gate_floor:,}, tolerance {tolerance:.0%})")
    print(f"wrote {path}")
    print(f"wrote {timing_path}")

    if args.gate and not gate_ok:
        print(f"FAIL: {GATE_WORKLOAD} median {gate_rate:,} events/s is more "
              f"than {tolerance:.0%} below the pinned floor of "
              f"{gate_floor:,} events/s — engine throughput regressed "
              f"(update benchmarks/engine_floor.json only for deliberate "
              f"trade-offs)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
