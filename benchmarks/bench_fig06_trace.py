"""Fig 6: global-memory access trace of a ResNet workload across cores.

Paper shape: within one iteration every core's accessed addresses grow
monotonically (Pattern-2); across iterations the same address sequence
repeats (Pattern-3); transfers are tensor-granular (Pattern-1).
"""

from benchmarks.common import Table, once
from repro.arch.dma import DmaEngine, TensorAccess
from repro.compiler.partitioner import partition
from repro.mem.address_space import PhysicalTranslator
from repro.mem.trace import MemoryTrace
from repro.workloads import resnet

CORES = 4
ITERATIONS = 3


def trace_resnet():
    """Stream ResNet-18 weights per pipeline stage for three iterations."""
    model = resnet(18)
    plan = partition(model, CORES)
    trace = MemoryTrace()
    # Lay tensors out contiguously per stage (the hypervisor's sequential
    # guest VA layout), then stream them each iteration.
    base = 0x1_0000
    stage_tensors = []
    for stage in plan.stages:
        tensors = []
        for layer_index in stage.layer_indices:
            layer = model.layers[layer_index]
            if layer.weight_bytes:
                tensors.append(TensorAccess(base, layer.weight_bytes))
                base += layer.weight_bytes
        stage_tensors.append(tensors)
    for iteration in range(ITERATIONS):
        for core, tensors in enumerate(stage_tensors):
            if not tensors:
                continue
            engine = DmaEngine(core, PhysicalTranslator(), trace=trace)
            engine.stream_weights(tensors, iteration=iteration)
    return trace


def test_fig06_trace(benchmark):
    trace = benchmark(trace_resnet)
    report = trace.summary()
    if once("fig06"):
        table = Table("Fig 6 — ResNet weight-access patterns",
                      ["core", "accesses/iter", "mean bytes",
                       "monotonic", "repeats"])
        for stats in report.per_core:
            table.add(stats.core, stats.accesses_per_iteration,
                      stats.mean_access_bytes,
                      f"{stats.monotonic_fraction:.0%}",
                      f"{stats.repeat_fraction:.0%}")
        table.show()
        summary = Table("Fig 6 — pattern summary (paper vs measured)",
                        ["pattern", "paper", "measured"])
        summary.add("P1 tensor granularity", "tensor-sized chunks",
                    f"{report.mean_access_bytes:,.0f} B mean")
        summary.add("P2 monotonic within iter", "monotonic",
                    f"{report.monotonic_fraction:.0%}")
        summary.add("P3 repeats across iters", "identical",
                    f"{report.repeat_fraction:.0%}")
        summary.show()
    assert report.monotonic_fraction == 1.0
    assert report.repeat_fraction == 1.0
    assert report.tensor_granular
