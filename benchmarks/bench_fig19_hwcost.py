"""Fig 19: additional FPGA resources of the virtualization hardware.

Paper shape: both vNPU (vChunk + vRouter) and Kim's UVM scheme add only
~2 % Total LUTs and FFs over the baseline NPU; a 128-entry routing table
needs almost no logic because it sits in (LUT)RAM.
"""

from benchmarks.common import Table, once
from repro.analysis.hwcost import figure19_table


def test_fig19_hardware_cost(benchmark):
    table_data = benchmark(figure19_table)
    if once("fig19"):
        table = Table("Fig 19 — added FPGA resources (% of baseline)",
                      ["structure", "Total LUTs", "Logic LUTs", "LUTRAMs",
                       "FFs"])
        for name, row in table_data.items():
            table.add(name, row["total_luts"], row["logic_luts"],
                      row["lutrams"], row["ffs"])
        table.show()
    for name, row in table_data.items():
        assert row["total_luts"] < 10, name
        assert row["ffs"] < 10, name
    # vNPU and Kim's are in the same small band (~2 %).
    vnpu_core = table_data["NPU core (vNPU)"]["total_luts"]
    kims_core = table_data["NPU core (Kim's)"]["total_luts"]
    assert vnpu_core < 5 and kims_core < 5
    # Routing table: LUTRAM-resident, no flip-flops.
    rt = table_data["Routing table (128 entries)"]
    assert rt["ffs"] == 0.0
    assert rt["logic_luts"] < 0.1
